"""The HTTP front end: push/query over the wire, errors, content types.

Boots a real :class:`~repro.service.ServiceHTTPServer` on an ephemeral
port and drives it with :mod:`urllib` — no test-only fakes between the
handler and the store, so these tests cover exactly what the CI service
smoke job exercises: a stream pushed over HTTP answers the same
``range_agg`` as batch :func:`repro.compress` over the same tuples.
"""

from __future__ import annotations

import json
import random
import urllib.error
import urllib.request

import pytest

from repro import Interval, compress
from repro.core import AggregateSegment
from repro.service import (
    Service,
    SnapshotIndex,
    WIRE_CONTENT_TYPE,
    decode_result,
    encode_segments,
    segments_to_jsonl,
    start_in_background,
)


def make_stream(count: int, seed: int) -> list[AggregateSegment]:
    rng = random.Random(seed)
    time = 0
    out = []
    for _ in range(count):
        length = rng.randrange(1, 3)
        out.append(
            AggregateSegment(
                (), (rng.uniform(0.0, 10.0),), Interval(time, time + length - 1)
            )
        )
        time += length
        if rng.random() < 0.1:
            time += 1
    return out


@pytest.fixture()
def server():
    service = Service(size=12)
    http_server, thread = start_in_background(service)
    yield http_server
    http_server.shutdown()
    http_server.server_close()


def get_json(server, path: str, headers: dict | None = None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}", headers=headers or {}
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def post(server, path: str, body: bytes, content_type: str | None = None):
    headers = {"Content-Type": content_type} if content_type else {}
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=body,
        method="POST",
        headers=headers,
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


class TestHTTPEndpoints:
    def test_push_then_query_matches_batch(self, server):
        stream = make_stream(60, seed=31)
        body = json.dumps(
            [
                {
                    "group": list(s.group),
                    "values": list(s.values),
                    "start": s.interval.start,
                    "end": s.interval.end,
                }
                for s in stream
            ]
        ).encode()
        reply = post(server, "/push/sensor", body)
        assert reply == {"pushed": 60, "generation": 1}

        lo = stream[0].interval.start
        hi = stream[-1].interval.end
        answer = get_json(
            server, f"/range_agg?key=sensor&t1={lo}&t2={hi}&fn=avg"
        )
        batch = compress(stream, size=12)
        expected = SnapshotIndex(batch.segments).resolve(None).range_agg(
            lo, hi, "avg"
        )
        # JSON floats roundtrip by repr, so equality is exact.
        assert tuple(answer["values"]) == expected

        point = get_json(server, f"/value_at?key=sensor&t={lo}")
        assert tuple(point["values"]) == SnapshotIndex(
            batch.segments
        ).resolve(None).value_at(lo)

    def test_push_jsonl_and_single_object(self, server):
        stream = make_stream(10, seed=32)
        assert post(
            server, "/push/a", segments_to_jsonl(stream).encode()
        )["pushed"] == 10
        one = {
            "group": [],
            "values": [1.5],
            "start": 1000,
            "end": 1001,
        }
        assert post(server, "/push/a", json.dumps(one).encode())["pushed"] == 1
        # Pretty-printed variants (embedded newlines) are the same object.
        two = {"group": [], "values": [1.5], "start": 1002, "end": 1003}
        assert post(
            server, "/push/a", json.dumps(two, indent=2).encode()
        )["pushed"] == 1

    def test_push_rejects_non_object_json(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server, "/push/a", b'"just a string"')
        assert excinfo.value.code == 400

    def test_push_binary_wire_body(self, server):
        stream = make_stream(25, seed=33)
        reply = post(
            server,
            "/push/wirekey",
            encode_segments(stream),
            content_type=WIRE_CONTENT_TYPE,
        )
        assert reply["pushed"] == 25
        stats = get_json(server, "/stats")
        assert stats["pushed_segments"] == 25

    def test_window_endpoint(self, server):
        post(
            server,
            "/push/w",
            json.dumps(
                [{"group": [], "values": [2.0], "start": 0, "end": 9}]
            ).encode(),
        )
        reply = get_json(server, "/window?key=w&t1=0&t2=9&stride=5")
        assert [b["start"] for b in reply["buckets"]] == [0, 5]
        assert all(b["values"] == [2.0] for b in reply["buckets"])

    def test_summary_json_and_wire(self, server):
        stream = make_stream(30, seed=34)
        post(server, "/push/s", segments_to_jsonl(stream).encode())
        summary = get_json(server, "/summary?key=s")
        assert summary["input_size"] == 30
        assert len(summary["segments"]) == summary["size"] <= 12

        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/summary?key=s",
            headers={"Accept": WIRE_CONTENT_TYPE},
        )
        with urllib.request.urlopen(request) as response:
            assert response.headers["Content-Type"] == WIRE_CONTENT_TYPE
            result = decode_result(response.read())
        assert result.input_size == 30
        assert result.segments == compress(stream, size=12).segments

    def test_health_and_stats(self, server):
        assert get_json(server, "/healthz") == {"status": "ok"}
        stats = get_json(server, "/stats")
        # The legacy store keys are a stable contract; the "query" sub-dict
        # (engine counters, PR 9) and per-sink replication lag ("sinks",
        # PR 10) are the additive extensions.
        query = stats.pop("query")
        assert stats.pop("sinks") == []
        assert stats == {
            "live_sessions": 0,
            "frozen_summaries": 0,
            "pushed_segments": 0,
            "evictions": 0,
            "durable": 0,
            "degraded": 0,
            "disk_errors": 0,
            "role": "primary",
            "replicas": 0,
            "replication_lag": 0,
            "last_acked_generation": -1,
        }
        assert query == {
            "cache_hits": 0,
            "cache_misses": 0,
            "queries": 0,
            "cost_rows": 0,
        }

    def test_metrics_endpoint(self, server):
        import re

        stream = make_stream(20, seed=35)
        post(server, "/push/m", segments_to_jsonl(stream).encode())
        lo = stream[0].interval.start
        hi = stream[-1].interval.end
        get_json(server, f"/range_agg?key=m&t1={lo}&t2={hi}&fn=avg")
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/metrics"
        )
        with urllib.request.urlopen(request) as response:
            content_type = response.headers["Content-Type"]
            text = response.read().decode("utf-8")
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        # The key families of every instrumented tier are present...
        assert "# TYPE repro_http_request_seconds histogram" in text
        assert 'repro_http_request_seconds_bucket{endpoint="push"' in text
        assert "# TYPE repro_store_pushed_segments_total counter" in text
        assert "# TYPE repro_query_cache_hits_total counter" in text
        assert "# TYPE repro_query_cache_misses_total counter" in text
        # ... and every non-comment line is Prometheus-parseable.
        line_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$"
        )
        for line in text.splitlines():
            if not line.startswith("#"):
                assert line_re.match(line), line


class TestHTTPErrors:
    def expect_error(self, server, path: str, status: int, needle: str):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, path)
        assert excinfo.value.code == status
        assert needle in json.load(excinfo.value)["error"]

    def test_unknown_route_404(self, server):
        self.expect_error(server, "/nope", 404, "unknown route")

    def test_unknown_key_400(self, server):
        self.expect_error(server, "/value_at?key=ghost&t=0", 400,
                          "unknown stream key")

    def test_missing_parameter_400(self, server):
        self.expect_error(server, "/value_at?key=k", 400, "missing required")

    def test_bad_fn_400(self, server):
        post(
            server,
            "/push/k",
            json.dumps(
                [{"group": [], "values": [1.0], "start": 0, "end": 0}]
            ).encode(),
        )
        self.expect_error(
            server, "/range_agg?key=k&t1=0&t2=1&fn=median", 400, "fn must be"
        )

    def test_malformed_push_body_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server, "/push/k", b'{"values": [1.0]}')
        assert excinfo.value.code == 400

    def test_empty_key_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(server, "/push/", b"[]")
        assert excinfo.value.code == 400


# ----------------------------------------------------------------------
# End-to-end deadlines: the X-Repro-Deadline header
# ----------------------------------------------------------------------
class TestRequestDeadlines:
    def test_a_generous_budget_changes_nothing(self, server):
        assert get_json(
            server, "/healthz", headers={"X-Repro-Deadline": "30"}
        ) == {"status": "ok"}

    def test_an_exhausted_budget_is_refused_before_any_work(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server, "/stats", headers={"X-Repro-Deadline": "0"})
        assert excinfo.value.code == 400
        assert json.load(excinfo.value)["code"] == "deadline_exceeded"

    def test_a_negative_budget_is_refused(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(
                server, "/stats", headers={"X-Repro-Deadline": "-1.5"}
            )
        assert excinfo.value.code == 400
        assert json.load(excinfo.value)["code"] == "deadline_exceeded"

    def test_a_malformed_budget_is_a_bad_request(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(
                server, "/stats", headers={"X-Repro-Deadline": "soon"}
            )
        assert excinfo.value.code == 400
        body = json.load(excinfo.value)
        assert body["code"] == "bad_request"
        assert "X-Repro-Deadline" in body["error"]
