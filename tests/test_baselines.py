"""Unit tests for the approximation baselines (Section 2.2 / Fig. 2)."""

import numpy as np
import pytest

from repro.baselines import (
    NotSeriesError,
    apca,
    atc,
    atc_error_sweep,
    chebyshev_approximate,
    dft_approximate,
    dwt_approximate,
    dwt_approximate_to_size,
    exponential_bounds,
    gaussian_breakpoints,
    haar_decompose,
    haar_reconstruct,
    paa,
    sax_transform,
    segment_count,
    segments_from_series,
    series_from_segments,
    series_sse,
    step_function_segments,
    v_optimal_histogram,
    v_optimal_histogram_for_error,
)
from repro.core import max_error, reduce_to_size, sse_between
from conftest import make_segment


@pytest.fixture
def smooth_series():
    rng = np.random.default_rng(1)
    steps = np.repeat(rng.uniform(0, 100, size=16), 8)
    return steps + rng.normal(0, 0.5, size=steps.size)


class TestSeriesHelpers:
    def test_series_from_segments_expands_lengths(self):
        segments = [make_segment(1, 3, 5.0), make_segment(4, 4, 2.0)]
        assert series_from_segments(segments).tolist() == [5.0, 5.0, 5.0, 2.0]

    def test_series_from_segments_rejects_gaps(self):
        with pytest.raises(NotSeriesError):
            series_from_segments([make_segment(1, 2, 1.0), make_segment(4, 5, 1.0)])

    def test_series_from_segments_rejects_groups(self):
        with pytest.raises(NotSeriesError):
            series_from_segments(
                [make_segment(1, 2, 1.0, ("A",)), make_segment(3, 4, 1.0, ("B",))]
            )

    def test_series_from_segments_rejects_multidimensional(self):
        from repro.core import AggregateSegment
        from repro import Interval

        with pytest.raises(NotSeriesError):
            series_from_segments(
                [AggregateSegment((), (1.0, 2.0), Interval(1, 1))]
            )

    def test_segments_from_series_round_trip(self):
        values = [1.0, 2.0, 2.0, 3.0]
        segments = segments_from_series(values)
        assert series_from_segments(segments).tolist() == values

    def test_step_function_segments_coalesces_runs(self):
        segments = step_function_segments(np.array([1.0, 1.0, 2.0, 2.0, 2.0]))
        assert len(segments) == 2
        assert segments[0].length == 2

    def test_series_sse_and_segment_count(self):
        assert series_sse(np.array([1.0, 2.0]), np.array([1.0, 4.0])) == 4.0
        assert segment_count(np.array([1.0, 1.0, 3.0])) == 2
        with pytest.raises(ValueError):
            series_sse(np.zeros(3), np.zeros(4))


class TestPAA:
    def test_exact_when_segments_equal_length(self, smooth_series):
        result = paa(smooth_series, smooth_series.size)
        assert result.error == pytest.approx(0.0)

    def test_segment_count(self, smooth_series):
        result = paa(smooth_series, 10)
        assert result.size == 10
        assert segment_count(result.approximation) <= 10

    def test_means_are_preserved(self):
        series = np.array([2.0, 4.0, 6.0, 8.0])
        result = paa(series, 2)
        assert result.approximation.tolist() == [3.0, 3.0, 7.0, 7.0]

    def test_error_decreases_with_more_segments(self, smooth_series):
        errors = [paa(smooth_series, c).error for c in (2, 8, 32)]
        assert errors[0] >= errors[1] >= errors[2]

    def test_invalid_parameters(self, smooth_series):
        with pytest.raises(ValueError):
            paa(smooth_series, 0)
        with pytest.raises(ValueError):
            paa(np.zeros((2, 2)), 2)


class TestDWT:
    def test_haar_round_trip(self):
        rng = np.random.default_rng(2)
        series = rng.normal(size=64)
        assert np.allclose(haar_reconstruct(haar_decompose(series)), series)

    def test_haar_requires_power_of_two(self):
        with pytest.raises(ValueError):
            haar_decompose(np.zeros(10))
        with pytest.raises(ValueError):
            haar_reconstruct(np.zeros(12))

    def test_full_spectrum_is_lossless(self, smooth_series):
        result = dwt_approximate(smooth_series, smooth_series.size * 2)
        assert result.error == pytest.approx(0.0, abs=1e-6)

    def test_error_decreases_with_more_coefficients(self, smooth_series):
        errors = [dwt_approximate(smooth_series, k).error for k in (1, 8, 64)]
        assert errors[0] >= errors[1] >= errors[2]

    def test_handles_non_power_of_two_length(self):
        series = np.linspace(0, 10, 37)
        result = dwt_approximate(series, 5)
        assert result.approximation.size == 37

    def test_to_size_respects_segment_bound(self, smooth_series):
        result = dwt_approximate_to_size(smooth_series, 12)
        assert result.size <= 12

    def test_invalid_parameters(self, smooth_series):
        with pytest.raises(ValueError):
            dwt_approximate(smooth_series, 0)


class TestDFTAndChebyshev:
    def test_dft_full_spectrum_lossless(self, smooth_series):
        result = dft_approximate(smooth_series, smooth_series.size)
        assert result.error == pytest.approx(0.0, abs=1e-6)

    def test_dft_error_decreases(self, smooth_series):
        assert (
            dft_approximate(smooth_series, 2).error
            >= dft_approximate(smooth_series, 20).error
        )

    def test_chebyshev_constant_series_is_exact(self):
        result = chebyshev_approximate(np.full(50, 3.0), 1)
        assert result.error == pytest.approx(0.0, abs=1e-9)

    def test_chebyshev_error_decreases(self, smooth_series):
        assert (
            chebyshev_approximate(smooth_series, 2).error
            >= chebyshev_approximate(smooth_series, 20).error
        )

    def test_invalid_parameters(self, smooth_series):
        with pytest.raises(ValueError):
            dft_approximate(smooth_series, 0)
        with pytest.raises(ValueError):
            chebyshev_approximate(smooth_series, 0)


class TestAPCA:
    def test_segment_count_is_exact(self, smooth_series):
        result = apca(smooth_series, 10)
        assert result.size == 10

    def test_improves_over_dwt_at_same_size(self, smooth_series):
        wavelet = dwt_approximate_to_size(smooth_series, 10)
        adaptive = apca(smooth_series, 10)
        assert adaptive.error <= wavelet.error + 1e-9

    def test_error_decreases_with_size(self, smooth_series):
        assert apca(smooth_series, 4).error >= apca(smooth_series, 16).error

    def test_invalid_parameters(self, smooth_series):
        with pytest.raises(ValueError):
            apca(smooth_series, 0)


class TestATC:
    def test_zero_bound_keeps_everything(self, proj_segments):
        result = atc(proj_segments, 0.0)
        assert result.size == len(proj_segments)

    def test_huge_bound_reaches_cmin(self, proj_segments):
        result = atc(proj_segments, 1e12)
        assert result.size == 3

    def test_respects_groups_and_gaps(self, proj_segments):
        result = atc(proj_segments, 1e12)
        assert [segment.group for segment in result.segments] == [
            ("A",), ("B",), ("B",)
        ]

    def test_total_error_matches_sse_between(self, proj_segments):
        result = atc(proj_segments, 30000.0)
        assert result.error == pytest.approx(
            sse_between(proj_segments, result.segments)
        )

    def test_negative_bound_rejected(self, proj_segments):
        with pytest.raises(ValueError):
            atc(proj_segments, -1.0)

    def test_never_better_than_optimal_at_same_size(self, proj_segments):
        result = atc(proj_segments, 30000.0)
        optimal = reduce_to_size(proj_segments, result.size)
        assert result.error >= optimal.error - 1e-9

    def test_error_sweep_indexes_by_size(self, proj_segments):
        sweep = atc_error_sweep(
            proj_segments, exponential_bounds(max_error(proj_segments))
        )
        assert set(sweep) <= set(range(3, len(proj_segments) + 1))
        for size, result in sweep.items():
            assert result.size == size

    def test_exponential_bounds_shapes(self):
        bounds = exponential_bounds(100.0, count=5, decay=0.5)
        assert bounds[0] == 100.0
        assert bounds[-1] == 0.0
        assert exponential_bounds(0.0) == [0.0]

    def test_empty_input(self):
        assert atc([], 1.0).segments == []


class TestSAX:
    def test_word_length_equals_segments(self, smooth_series):
        result = sax_transform(smooth_series, 12, alphabet_size=6)
        assert len(result.word) == 12

    def test_symbols_within_alphabet(self, smooth_series):
        result = sax_transform(smooth_series, 10, alphabet_size=4)
        assert all(0 <= symbol < 4 for symbol in result.symbols)

    def test_breakpoints_are_monotone_and_symmetric(self):
        breakpoints = gaussian_breakpoints(8)
        assert list(breakpoints) == sorted(breakpoints)
        assert breakpoints[0] == pytest.approx(-breakpoints[-1], abs=1e-6)

    def test_constant_series(self):
        result = sax_transform(np.full(32, 5.0), 4, alphabet_size=4)
        assert len(set(result.word)) == 1

    def test_invalid_parameters(self, smooth_series):
        with pytest.raises(ValueError):
            gaussian_breakpoints(1)
        with pytest.raises(ValueError):
            sax_transform(smooth_series, 4, alphabet_size=100)


class TestVOptimalHistogram:
    def test_matches_dp_on_unit_segments(self):
        values = [1.0, 1.0, 5.0, 5.0, 9.0, 9.0]
        histogram = v_optimal_histogram(values, 3)
        assert histogram.size == 3
        assert histogram.error == pytest.approx(0.0)

    def test_bucket_boundaries_cover_input(self):
        values = list(range(20))
        histogram = v_optimal_histogram([float(v) for v in values], 4)
        assert histogram.buckets[0][0] == 0
        assert histogram.buckets[-1][1] == 19

    def test_error_bounded_variant(self):
        values = [float(v) for v in range(32)]
        histogram = v_optimal_histogram_for_error(values, 0.05)
        full_error = v_optimal_histogram(values, 1).error
        assert histogram.error <= 0.05 * full_error + 1e-9

    def test_empty_and_invalid(self):
        assert v_optimal_histogram([], 3).buckets == []
        with pytest.raises(ValueError):
            v_optimal_histogram([1.0], 0)


class TestRelativeQuality:
    def test_pta_beats_non_adaptive_baselines(self, smooth_series):
        """The headline quality claim: PTA error below PAA/DWT at equal size."""
        segments = segments_from_series(smooth_series.tolist())
        size = 16
        optimal = reduce_to_size(segments, size)
        assert optimal.error <= paa(smooth_series, size).error + 1e-9
        assert optimal.error <= dwt_approximate_to_size(smooth_series, size).error + 1e-9
        assert optimal.error <= apca(smooth_series, size).error + 1e-9
