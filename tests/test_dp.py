"""Unit tests for the exact DP algorithms PTAc and PTAε (Section 5)."""

import itertools
import math
import random

import pytest

from repro import Interval
from repro.core import (
    AggregateSegment,
    adjacent,
    cmin,
    max_error,
    merge,
    optimal_error_curve,
    reduce_random,
    sse_between,
)
from repro.core.dp import reduce_to_error, reduce_to_size
from conftest import make_segment


def brute_force_optimum(segments, size):
    """Smallest reachable error over every way of partitioning into runs."""
    n = len(segments)
    best = math.inf
    positions = range(1, n)
    for cut_points in itertools.combinations(positions, size - 1):
        cuts = [0, *cut_points, n]
        runs = [segments[cuts[i]:cuts[i + 1]] for i in range(len(cuts) - 1)]
        if any(
            not all(adjacent(a, b) for a, b in zip(run, run[1:]))
            for run in runs
        ):
            continue
        reduced = []
        for run in runs:
            collapsed = run[0]
            for segment in run[1:]:
                collapsed = merge(collapsed, segment)
            reduced.append(collapsed)
        best = min(best, sse_between(segments, reduced))
    return best


class TestSizeBounded:
    def test_running_example_result(self, proj_segments):
        result = reduce_to_size(proj_segments, 4)
        assert result.size == 4
        assert result.error == pytest.approx(49166.67, abs=1)
        rows = [
            (seg.group[0], round(seg.values[0], 2), seg.interval)
            for seg in result.segments
        ]
        assert rows == [
            ("A", 733.33, Interval(1, 3)),
            ("A", 375.0, Interval(4, 7)),
            ("B", 500.0, Interval(4, 5)),
            ("B", 500.0, Interval(7, 8)),
        ]

    def test_error_matches_sse_between(self, proj_segments):
        result = reduce_to_size(proj_segments, 4)
        assert result.error == pytest.approx(
            sse_between(proj_segments, result.segments)
        )

    def test_reduction_to_cmin_reaches_max_error(self, proj_segments):
        result = reduce_to_size(proj_segments, cmin(proj_segments))
        assert result.error == pytest.approx(max_error(proj_segments))

    def test_size_below_cmin_rejected(self, proj_segments):
        with pytest.raises(ValueError):
            reduce_to_size(proj_segments, 2)

    def test_size_of_zero_rejected(self, proj_segments):
        with pytest.raises(ValueError):
            reduce_to_size(proj_segments, 0)

    def test_size_at_least_input_returns_input(self, proj_segments):
        result = reduce_to_size(proj_segments, len(proj_segments))
        assert result.segments == proj_segments
        assert result.error == 0.0

    def test_empty_input(self):
        result = reduce_to_size([], 3)
        assert result.segments == []
        assert result.error == 0.0

    def test_matches_brute_force_on_random_inputs(self):
        rng = random.Random(5)
        for trial in range(8):
            segments = [
                make_segment(i, i, rng.uniform(0, 100)) for i in range(1, 9)
            ]
            for size in (2, 3, 4):
                result = reduce_to_size(segments, size)
                assert result.error == pytest.approx(
                    brute_force_optimum(segments, size), abs=1e-6
                ), f"trial {trial}, size {size}"

    def test_matches_brute_force_with_gaps_and_groups(self):
        rng = random.Random(11)
        segments = [
            make_segment(1, 2, rng.uniform(0, 10), group=("A",)),
            make_segment(3, 3, rng.uniform(0, 10), group=("A",)),
            make_segment(5, 6, rng.uniform(0, 10), group=("A",)),
            make_segment(7, 7, rng.uniform(0, 10), group=("A",)),
            make_segment(1, 4, rng.uniform(0, 10), group=("B",)),
            make_segment(5, 5, rng.uniform(0, 10), group=("B",)),
        ]
        for size in (3, 4, 5):
            result = reduce_to_size(segments, size)
            assert result.error == pytest.approx(
                brute_force_optimum(segments, size), abs=1e-9
            )

    def test_never_worse_than_random_reductions(self, proj_segments):
        optimal = reduce_to_size(proj_segments, 4)
        for seed in range(10):
            candidate = reduce_random(proj_segments, 4, random.Random(seed))
            assert optimal.error <= sse_between(proj_segments, candidate) + 1e-9

    def test_unoptimized_matches_optimized(self, proj_segments):
        plain = reduce_to_size(proj_segments, 4, optimized=False)
        pruned = reduce_to_size(proj_segments, 4, optimized=True)
        assert plain.error == pytest.approx(pruned.error)
        assert plain.segments == pruned.segments

    def test_pruning_reduces_work_on_gapped_data(self):
        rng = random.Random(1)
        segments = []
        for group_index in range(20):
            for position in range(10):
                segments.append(
                    make_segment(
                        position + 1, position + 1, rng.uniform(0, 100),
                        group=(f"g{group_index}",),
                    )
                )
        plain = reduce_to_size(segments, 30, optimized=False)
        pruned = reduce_to_size(segments, 30, optimized=True)
        assert pruned.error == pytest.approx(plain.error)
        assert pruned.stats.split_candidates < plain.stats.split_candidates

    def test_weighted_dimensions_change_the_optimum(self):
        segments = [
            AggregateSegment((), (0.0, 0.0), Interval(1, 1)),
            AggregateSegment((), (10.0, 0.1), Interval(2, 2)),
            AggregateSegment((), (10.0, 10.0), Interval(3, 3)),
        ]
        favour_first = reduce_to_size(segments, 2, weights=(10.0, 0.1))
        favour_second = reduce_to_size(segments, 2, weights=(0.1, 10.0))
        assert favour_first.segments != favour_second.segments

    def test_monotone_error_in_size(self, proj_segments):
        curve = optimal_error_curve(proj_segments)
        errors = [curve[k] for k in sorted(curve) if not math.isinf(curve[k])]
        assert errors == sorted(errors, reverse=True)

    def test_multidimensional_input(self):
        rng = random.Random(3)
        segments = [
            AggregateSegment(
                (), (rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1)),
                Interval(i, i),
            )
            for i in range(1, 30)
        ]
        result = reduce_to_size(segments, 7)
        assert result.size == 7
        assert result.error == pytest.approx(
            sse_between(segments, result.segments)
        )


class TestErrorBounded:
    def test_epsilon_one_gives_maximal_reduction(self, proj_segments):
        result = reduce_to_error(proj_segments, 1.0)
        assert result.size == cmin(proj_segments)

    def test_epsilon_zero_gives_lossless_result(self, proj_segments):
        result = reduce_to_error(proj_segments, 0.0)
        assert result.error == pytest.approx(0.0)
        assert result.size <= len(proj_segments)

    def test_threshold_is_respected(self, proj_segments):
        for epsilon in (0.01, 0.05, 0.2, 0.5):
            result = reduce_to_error(proj_segments, epsilon)
            assert result.error <= epsilon * max_error(proj_segments) + 1e-6

    def test_result_is_minimal_in_size(self, proj_segments):
        epsilon = 0.05
        result = reduce_to_error(proj_segments, epsilon)
        threshold = epsilon * max_error(proj_segments)
        if result.size > cmin(proj_segments):
            smaller = reduce_to_size(proj_segments, result.size - 1)
            assert smaller.error > threshold

    def test_error_bound_outside_range_rejected(self, proj_segments):
        with pytest.raises(ValueError):
            reduce_to_error(proj_segments, -0.1)
        with pytest.raises(ValueError):
            reduce_to_error(proj_segments, 1.5)

    def test_empty_input(self):
        result = reduce_to_error([], 0.5)
        assert result.segments == []

    def test_agrees_with_size_bounded_at_same_size(self, proj_segments):
        result = reduce_to_error(proj_segments, 0.25)
        by_size = reduce_to_size(proj_segments, result.size)
        assert result.error == pytest.approx(by_size.error)

    def test_lossless_input_collapses_to_cmin(self):
        segments = [make_segment(i, i, 4.0) for i in range(1, 10)]
        result = reduce_to_error(segments, 0.0)
        # Merging identical values introduces no error at all, so even an
        # error bound of zero allows the maximal reduction.
        assert result.size == 1
