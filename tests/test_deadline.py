"""End-to-end request deadlines (`repro.util.deadline`)."""

from __future__ import annotations

import threading

import pytest

from repro.util.deadline import (
    Deadline,
    DeadlineExceeded,
    attach,
    current_deadline,
    deadline_scope,
)


class FakeClock:
    def __init__(self):
        self.now = 50.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestDeadline:
    def test_remaining_counts_down_on_the_injected_clock(self, clock):
        deadline = Deadline.after(2.0, clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired

    def test_expired_and_check(self, clock):
        deadline = Deadline.after(1.0, clock)
        deadline.check("anything")  # no-op while alive
        clock.advance(1.0)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded, match="before the wait"):
            deadline.check("the wait")

    def test_deadline_exceeded_is_a_timeout_error(self):
        # The HTTP ladder's existing TimeoutError arm (400
        # deadline_exceeded) must catch it with no new plumbing.
        assert issubclass(DeadlineExceeded, TimeoutError)

    def test_clamp_bounds_a_socket_timeout(self, clock):
        deadline = Deadline.after(2.0, clock)
        assert deadline.clamp(30.0) == pytest.approx(2.0)
        assert deadline.clamp(0.5) == pytest.approx(0.5)

    def test_clamp_of_none_means_the_remaining_budget(self, clock):
        deadline = Deadline.after(2.0, clock)
        assert deadline.clamp(None) == pytest.approx(2.0)

    def test_clamp_never_returns_a_nonpositive_timeout(self, clock):
        # A zero socket timeout means non-blocking, not "expired" —
        # callers check() first, then clamp.
        deadline = Deadline.after(0.5, clock)
        clock.advance(10.0)
        assert deadline.clamp(30.0) == 0.001
        assert deadline.clamp(None) == 0.001


class TestScope:
    def test_no_ambient_deadline_by_default(self):
        assert current_deadline() is None

    def test_scope_from_a_relative_budget(self):
        with deadline_scope(5.0) as deadline:
            assert current_deadline() is deadline
            assert 0.0 < deadline.remaining() <= 5.0
        assert current_deadline() is None

    def test_scope_adopts_an_existing_deadline(self, clock):
        mine = Deadline.after(1.0, clock)
        with deadline_scope(mine) as deadline:
            assert deadline is mine
            assert current_deadline() is mine

    def test_none_budget_leaves_the_ambient_deadline_in_place(self, clock):
        outer = Deadline.after(1.0, clock)
        with deadline_scope(outer):
            with deadline_scope(None) as inner:
                assert inner is outer
                assert current_deadline() is outer

    def test_scopes_nest_and_restore(self, clock):
        outer = Deadline.after(9.0, clock)
        inner = Deadline.after(1.0, clock)
        with deadline_scope(outer):
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_attach_reenters_a_captured_deadline_on_a_thread(self, clock):
        # Plain worker threads do not inherit ContextVars — the cluster
        # coordinator captures the deadline and re-enters it per thread.
        captured = Deadline.after(3.0, clock)
        seen = []

        def worker():
            seen.append(current_deadline())
            with attach(captured):
                seen.append(current_deadline())
            seen.append(current_deadline())

        thread = threading.Thread(target=worker)
        with deadline_scope(captured):
            thread.start()
            thread.join()
        assert seen == [None, captured, None]

    def test_attach_none_is_a_noop(self):
        with attach(None):
            assert current_deadline() is None
