"""Request tracing: id hygiene, spans, and end-to-end propagation.

The propagation tests run the real processes' worth of plumbing in one
process: a live HTTP server over a durable store (header → ContextVar →
WAL span), and a real socket cluster (ContextVar → envelope meta →
remote worker span, surviving a worker retry).
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro import Interval
from repro.core import AggregateSegment
from repro.cluster import reduce_cluster, start_worker
from repro.cluster.coordinator import encode_shard_request
from repro.cluster.transport import unpack_envelope
from repro.obs import metrics, tracing
from repro.obs.tracing import (
    TRACE_HEADER,
    attach,
    clear_spans,
    current_trace_id,
    finished_spans,
    new_trace_id,
    span,
    trace,
    valid_trace_id,
)
from repro.parallel import encode_segments as encode_parallel
from repro.service import Service, start_in_background
from repro.util import failpoints


@pytest.fixture(autouse=True)
def _armed_and_clean():
    previous = metrics.set_enabled(True)
    clear_spans()
    yield
    clear_spans()
    metrics.set_enabled(previous)


def _segments(count: int) -> list[AggregateSegment]:
    # Gapped singleton intervals: every segment is its own maximal run,
    # so plan_shards can cut the stream into real shards.
    return [
        AggregateSegment((), (float(i % 7),), Interval(2 * i, 2 * i))
        for i in range(count)
    ]


class TestTraceIds:
    def test_validity(self):
        assert valid_trace_id("abc123")
        assert valid_trace_id("A-Z_09" * 10)  # 60 chars
        assert not valid_trace_id("")
        assert not valid_trace_id("x" * 65)
        assert not valid_trace_id("bad id")
        assert not valid_trace_id('evil"id\n')
        assert not valid_trace_id(None)
        assert not valid_trace_id(42)

    def test_minted_ids_are_valid_and_distinct(self):
        a, b = new_trace_id(), new_trace_id()
        assert valid_trace_id(a) and valid_trace_id(b)
        assert a != b

    def test_trace_adopts_valid_and_mints_otherwise(self):
        with trace("client-id-1") as tid:
            assert tid == "client-id-1"
            assert current_trace_id() == "client-id-1"
        assert current_trace_id() is None
        with trace("not valid!") as tid:
            assert tid != "not valid!"
            assert valid_trace_id(tid)
        with trace(None) as tid:
            assert valid_trace_id(tid)

    def test_attach_ignores_invalid(self):
        with attach("adopted-1"):
            assert current_trace_id() == "adopted-1"
        assert current_trace_id() is None
        with attach(None):
            assert current_trace_id() is None
        with attach("bad id!"):
            assert current_trace_id() is None

    def test_nesting_restores_outer(self):
        with trace("outer") :
            with attach("inner"):
                assert current_trace_id() == "inner"
            assert current_trace_id() == "outer"


class TestSpans:
    def test_span_records_under_current_trace(self):
        with trace("spantrace") :
            with span("unit_stage"):
                pass
        records = finished_spans(trace_id="spantrace", stage="unit_stage")
        assert len(records) == 1
        assert records[0].seconds >= 0.0
        # ... and feeds the per-stage histogram family.
        histogram = metrics.REGISTRY.histogram(
            "repro_stage_seconds", stage="unit_stage"
        )
        assert histogram.count >= 1

    def test_span_without_trace_records_empty_id(self):
        with span("orphan_stage"):
            pass
        records = finished_spans(stage="orphan_stage")
        assert records and records[-1].trace_id == ""

    def test_disabled_span_is_shared_noop(self):
        with metrics.disabled():
            first = span("gated_stage")
            second = span("other_gated")
            assert first is second  # the shared no-op instance
            with first:
                pass
        assert finished_spans(stage="gated_stage") == []

    def test_ring_is_bounded(self):
        with trace("flood"):
            for _ in range(2100):
                tracing.record_span("flood_stage", 0.0)
        assert len(finished_spans()) <= 2048


class TestHTTPPropagation:
    @pytest.fixture()
    def server(self, tmp_path):
        service = Service(size=12, data_dir=tmp_path)
        http_server, _thread = start_in_background(service)
        yield http_server
        http_server.shutdown()
        http_server.server_close()

    def _request(self, server, path, body=None, headers=None):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}{path}",
            data=body,
            method="POST" if body is not None else "GET",
            headers=headers or {},
        )
        with urllib.request.urlopen(request) as response:
            return response.headers, json.load(response)

    def test_push_trace_reaches_the_wal(self, server):
        body = json.dumps(
            [{"group": [], "values": [1.0], "start": 0, "end": 4}]
        ).encode()
        headers, reply = self._request(
            server, "/push/traced", body, {TRACE_HEADER: "pushtrace01"}
        )
        assert reply["pushed"] == 1
        # The response echoes the adopted id, and the WAL append span
        # carries it: header → ContextVar → store → durability.
        assert headers[TRACE_HEADER] == "pushtrace01"
        assert finished_spans(trace_id="pushtrace01", stage="wal_append")

    def test_query_trace_reaches_the_snapshot(self, server):
        body = json.dumps(
            [{"group": [], "values": [2.0], "start": 0, "end": 9}]
        ).encode()
        self._request(server, "/push/q", body)
        headers, _reply = self._request(
            server,
            "/range_agg?key=q&t1=0&t2=9&fn=avg",
            headers={TRACE_HEADER: "querytrace1"},
        )
        assert headers[TRACE_HEADER] == "querytrace1"
        assert finished_spans(trace_id="querytrace1", stage="snapshot_delta")

    def test_invalid_header_gets_a_minted_echo(self, server):
        headers, _reply = self._request(
            server, "/healthz", headers={TRACE_HEADER: "not valid!!"}
        )
        echoed = headers[TRACE_HEADER]
        assert echoed != "not valid!!"
        assert valid_trace_id(echoed)


class TestClusterPropagation:
    @pytest.fixture()
    def workers(self):
        started = []

        def _start(count=2):
            for _ in range(count):
                worker, _ = start_worker()
                started.append(worker)
            return [worker.address for worker in started]

        yield _start
        for worker in started:
            worker.shutdown()
            worker.server_close()

    def test_envelope_meta_carries_the_trace_id(self):
        import numpy as np

        encoded = encode_parallel(_segments(10))
        payload = encode_shard_request(
            encoded, 0, 10, np.asarray([1.0]), trace_id="envtrace1"
        )
        meta, _body = unpack_envelope(payload, "shard request")
        assert meta["trace_id"] == "envtrace1"
        bare = encode_shard_request(encoded, 0, 10, np.asarray([1.0]))
        meta, _body = unpack_envelope(bare, "shard request")
        assert "trace_id" not in meta

    def test_trace_follows_a_cluster_reduce(self, workers):
        addresses = workers(2)
        with trace("clustertrace") as tid:
            reduce_cluster(
                _segments(600), size=60, cluster=addresses, shard_size=128
            )
        # The remote workers' reduce spans and the coordinator's final
        # frontier merge all land under the caller's id.
        reduce_spans = finished_spans(trace_id=tid, stage="shard_reduce")
        assert len(reduce_spans) >= 2
        assert finished_spans(trace_id=tid, stage="frontier_merge")

    def test_trace_survives_a_worker_retry(self, workers):
        addresses = workers(2)
        with failpoints.activated(
            {"cluster.worker": failpoints.Raise(times=1)}
        ):
            with trace("retrytrace") as tid:
                reduce_cluster(
                    _segments(600),
                    size=60,
                    cluster=addresses,
                    shard_size=128,
                    shard_retries=1,
                    retry_backoff=0.0,
                )
        assert finished_spans(trace_id=tid, stage="shard_reduce")
        assert metrics.value("repro_shard_retries_total", tier="cluster") >= 1
