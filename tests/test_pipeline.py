"""Tests for the streaming compression pipeline (:mod:`repro.pipeline`).

The facade must (a) produce results identical to calling the underlying
algorithms directly, (b) be invariant to how the input is delivered —
materialised list, one-shot generator, any ``chunk_size`` — and (c) keep the
greedy path genuinely streaming (bounded heap, no materialisation).
"""

from __future__ import annotations

import pytest

from repro.core import greedy_reduce_to_size, max_error, reduce_ita, sse_between
from repro.core.dp import reduce_to_size
from repro.datasets import (
    synthetic_grouped_segments,
    synthetic_sequential_segments,
)
from repro.pipeline import CompressionResult, compress, iter_chunks


def assert_same_segments(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.group == b.group
        assert a.interval == b.interval
        assert a.values == pytest.approx(b.values)


# ----------------------------------------------------------------------
# Chunking building block
# ----------------------------------------------------------------------
class TestIterChunks:
    def test_exact_division(self):
        assert list(iter_chunks(range(6), 2)) == [[0, 1], [2, 3], [4, 5]]

    def test_remainder(self):
        assert list(iter_chunks(range(5), 3)) == [[0, 1, 2], [3, 4]]

    def test_empty(self):
        assert list(iter_chunks([], 4)) == []

    def test_chunk_size_one(self):
        assert list(iter_chunks("abc", 1)) == [["a"], ["b"], ["c"]]

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            list(iter_chunks(range(3), 0))


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_requires_exactly_one_bound(self):
        segments = synthetic_sequential_segments(10, 1, seed=1)
        with pytest.raises(ValueError, match="exactly one"):
            compress(segments)
        with pytest.raises(ValueError, match="exactly one"):
            compress(segments, size=3, max_error=0.5)

    def test_rejects_unknown_method(self):
        segments = synthetic_sequential_segments(10, 1, seed=1)
        with pytest.raises(ValueError, match="method"):
            compress(segments, size=3, method="quantum")

    def test_rejects_invalid_chunk_size(self):
        segments = synthetic_sequential_segments(10, 1, seed=1)
        with pytest.raises(ValueError, match="chunk_size"):
            compress(segments, size=3, chunk_size=0)

    def test_rejects_group_by_on_segment_stream(self):
        segments = synthetic_sequential_segments(10, 1, seed=1)
        with pytest.raises(ValueError, match="group_by"):
            compress(segments, size=3, group_by=["proj"])


# ----------------------------------------------------------------------
# Streaming vs. batch equivalence
# ----------------------------------------------------------------------
class TestStreamingEquivalence:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 100_000])
    def test_size_bounded_chunk_invariance(self, chunk_size, backend):
        segments = synthetic_grouped_segments(6, 20, dimensions=2, seed=5)
        batch = compress(list(segments), size=25, backend=backend)
        streamed = compress(
            iter(segments), size=25, chunk_size=chunk_size, backend=backend
        )
        assert_same_segments(batch.segments, streamed.segments)
        assert streamed.error == pytest.approx(batch.error)
        assert streamed.max_heap_size == batch.max_heap_size

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_matches_direct_greedy_call(self, backend):
        segments = synthetic_sequential_segments(150, dimensions=2, seed=6)
        direct = greedy_reduce_to_size(
            iter(segments), 30, 1, backend=backend
        )
        piped = compress(iter(segments), size=30, backend=backend)
        assert_same_segments(direct.segments, piped.segments)
        assert piped.error == pytest.approx(direct.error)
        assert piped.merges == direct.merges
        assert piped.input_size == len(segments)

    def test_error_bounded_stream_vs_batch(self):
        segments = synthetic_sequential_segments(120, dimensions=2, seed=7)
        batch = compress(list(segments), max_error=0.4)
        streamed = compress(
            iter(segments),
            max_error=0.4,
            chunk_size=11,
            input_size_estimate=len(segments),
            max_error_estimate=max_error(segments),
        )
        assert_same_segments(batch.segments, streamed.segments)
        assert streamed.error == pytest.approx(batch.error)

    def test_generator_without_estimates_is_still_correct(self):
        segments = synthetic_sequential_segments(80, dimensions=1, seed=8)
        result = compress(iter(segments), max_error=0.3)
        # No estimates: early merging is disabled, but the bound still holds.
        assert result.error <= 0.3 * max_error(segments) + 1e-9
        assert result.size < len(segments)

    def test_error_matches_recomputed_sse(self):
        segments = synthetic_sequential_segments(100, dimensions=2, seed=9)
        result = compress(iter(segments), size=20, backend="numpy")
        recomputed = sse_between(segments, result.segments)
        assert result.error == pytest.approx(recomputed)

    def test_streaming_keeps_heap_bounded(self):
        segments = synthetic_sequential_segments(400, dimensions=1, seed=10)
        result = compress(iter(segments), size=10, delta=0, chunk_size=32)
        # δ = 0 pins the heap to the output size plus the incoming tuple.
        assert result.max_heap_size <= 11
        assert result.input_size == 400


# ----------------------------------------------------------------------
# DP method and relation input
# ----------------------------------------------------------------------
class TestDPAndRelationInput:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_dp_method_matches_reduce_to_size(self, backend):
        segments = synthetic_grouped_segments(4, 12, dimensions=2, seed=11)
        direct = reduce_to_size(list(segments), 15, backend=backend)
        piped = compress(iter(segments), size=15, method="dp", backend=backend)
        assert_same_segments(direct.segments, piped.segments)
        assert piped.error == pytest.approx(direct.error)
        assert piped.method == "dp"

    def test_relation_input_matches_reduce_ita(self, proj_relation):
        aggregates = {"avg_sal": ("avg", "sal")}
        piped = compress(
            proj_relation,
            group_by=["proj"],
            aggregates=aggregates,
            size=4,
            method="dp",
        )
        assert piped.size == 4
        assert piped.input_size == 7  # the s1..s7 of Fig. 1(c)

        from repro import ita
        from repro.core import segments_to_relation

        ita_result = ita(proj_relation, ["proj"], aggregates)
        expected = reduce_ita(ita_result, ["proj"], ["avg_sal"], size=4)
        piped_relation = segments_to_relation(
            piped.segments, ["proj"], ["avg_sal"]
        )
        assert piped_relation.rows() == expected.rows()

    def test_relation_greedy_error_bound(self, proj_relation):
        result = compress(
            proj_relation,
            group_by=["proj"],
            aggregates={"avg_sal": ("avg", "sal")},
            max_error=0.5,
        )
        assert 0 < result.size <= 7
        assert result.method == "greedy"

    def test_result_is_iterable_and_sized(self):
        segments = synthetic_sequential_segments(50, dimensions=1, seed=12)
        result = compress(iter(segments), size=10)
        assert isinstance(result, CompressionResult)
        assert len(result) == len(list(result)) == result.size


# ----------------------------------------------------------------------
# Edge cases
# ----------------------------------------------------------------------
class TestEdgeCases:
    def test_empty_stream(self):
        result = compress(iter([]), size=5)
        assert result.size == 0
        assert result.segments == []
        assert result.input_size == 0

    def test_single_segment(self):
        segment = synthetic_sequential_segments(1, dimensions=1, seed=13)
        result = compress(iter(segment), size=5)
        assert result.size == 1
        assert result.error == 0.0

    def test_size_larger_than_input(self):
        segments = synthetic_sequential_segments(8, dimensions=1, seed=14)
        result = compress(iter(segments), size=100)
        assert result.size == 8
        assert result.error == 0.0

    def test_non_list_sequence_input(self):
        segments = tuple(synthetic_sequential_segments(30, 1, seed=15))
        result = compress(segments, max_error=0.5)
        assert result.size < 30
