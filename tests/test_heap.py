"""Unit tests for the merge heap (Section 6.2.2)."""

import math

import pytest

from repro.core import MergeHeap
from conftest import make_segment


def fill(heap, segments):
    for segment in segments:
        heap.insert(segment)
    return heap


class TestInsert:
    def test_first_node_has_infinite_key(self):
        heap = MergeHeap()
        node = heap.insert(make_segment(1, 2, 5.0))
        assert math.isinf(node.key)

    def test_adjacent_node_gets_pairwise_error_key(self):
        heap = fill(MergeHeap(), [make_segment(1, 2, 800.0, ("A",))])
        node = heap.insert(make_segment(3, 3, 600.0, ("A",)))
        assert node.key == pytest.approx(26666.67, abs=1)

    def test_gap_node_has_infinite_key(self):
        heap = fill(MergeHeap(), [make_segment(1, 2, 5.0)])
        node = heap.insert(make_segment(5, 6, 5.0))
        assert math.isinf(node.key)

    def test_group_change_has_infinite_key(self):
        heap = fill(MergeHeap(), [make_segment(1, 2, 5.0, ("A",))])
        node = heap.insert(make_segment(3, 4, 5.0, ("B",)))
        assert math.isinf(node.key)

    def test_ids_are_sequential(self):
        heap = fill(MergeHeap(), [make_segment(i, i, float(i)) for i in range(1, 5)])
        assert [node.id for node in heap] == [1, 2, 3, 4]

    def test_max_size_tracking(self):
        heap = fill(MergeHeap(), [make_segment(i, i, float(i)) for i in range(1, 6)])
        heap.merge_top()
        assert heap.max_size == 5
        assert len(heap) == 4


class TestPeekAndMerge:
    def test_peek_returns_most_similar_pair(self, proj_segments):
        heap = fill(MergeHeap(), proj_segments)
        top = heap.peek()
        # Fig. 10(a): the most similar pair is (s4, s5), key 1 667.
        assert top.segment.values[0] == 300.0
        assert top.key == pytest.approx(1666.67, abs=1)

    def test_peek_on_empty_heap(self):
        assert MergeHeap().peek() is None

    def test_peek_does_not_remove(self, proj_segments):
        heap = fill(MergeHeap(), proj_segments)
        assert heap.peek() is heap.peek()
        assert len(heap) == len(proj_segments)

    def test_merge_top_relinks_and_reduces_size(self, proj_segments):
        heap = fill(MergeHeap(), proj_segments)
        survivor = heap.merge_top()
        assert len(heap) == len(proj_segments) - 1
        assert survivor.segment.values[0] == pytest.approx(1000.0 / 3.0)
        # The survivor keeps its id (the id of s4).
        assert survivor.id == 4

    def test_merge_top_updates_neighbour_keys(self, proj_segments):
        heap = fill(MergeHeap(), proj_segments)
        survivor = heap.merge_top()  # merges s4, s5
        # New key of the survivor: error of merging s3 with (s4 ⊕ s5).
        assert survivor.key == pytest.approx(20833.33, abs=1)

    def test_merge_until_cmin_then_raises(self, proj_segments):
        heap = fill(MergeHeap(), proj_segments)
        for _ in range(4):  # four adjacent pairs exist
            heap.merge_top()
        assert len(heap) == 3
        with pytest.raises(ValueError):
            heap.merge_top()

    def test_merge_sequence_matches_dendrogram(self, proj_segments):
        """Fig. 9: merges happen in the order (s4,s5), (s2,s3), then both."""
        heap = fill(MergeHeap(), proj_segments)
        first = heap.merge_top()
        assert first.segment.interval.start == 5
        second = heap.merge_top()
        assert second.segment.interval == make_segment(3, 4, 0).interval
        third = heap.merge_top()
        assert third.segment.values[0] == pytest.approx(420.0)

    def test_weights_influence_keys(self):
        heap = MergeHeap(weights=(3.0,))
        heap.insert(make_segment(1, 1, 0.0))
        node = heap.insert(make_segment(2, 2, 2.0))
        unweighted = MergeHeap()
        unweighted.insert(make_segment(1, 1, 0.0))
        plain = unweighted.insert(make_segment(2, 2, 2.0))
        assert node.key == pytest.approx(9.0 * plain.key)


class TestTraversal:
    def test_segments_in_chronological_order(self, proj_segments):
        heap = fill(MergeHeap(), proj_segments)
        heap.merge_top()
        values = [segment.values[0] for segment in heap.segments()]
        assert values == [800.0, 600.0, 500.0, pytest.approx(1000.0 / 3.0), 500.0, 500.0]

    def test_adjacent_successor_count(self, proj_segments):
        heap = fill(MergeHeap(), proj_segments)
        nodes = list(heap)
        # s1 has four adjacent successors (s2..s5) before the boundary.
        assert heap.adjacent_successor_count(nodes[0], 10) == 4
        assert heap.adjacent_successor_count(nodes[0], 2) == 2
        # s5 is followed by a group change, s7 by nothing.
        assert heap.adjacent_successor_count(nodes[4], 3) == 0
        assert heap.adjacent_successor_count(nodes[6], 3) == 0

    def test_head_and_tail(self, proj_segments):
        heap = fill(MergeHeap(), proj_segments)
        assert heap.head.segment == proj_segments[0]
        assert heap.tail.segment == proj_segments[-1]
