"""The paper's worked examples, asserted exactly.

Every number in this module comes from the text of the paper: Fig. 1
(running example), Fig. 4/5 (DP matrices), Example 5 (merge error),
Example 12 (prefix sums), Example 6/16 (optimal reduction), Example 17 /
Fig. 9 (greedy dendrogram), Examples 13–15 (gap vector and DP bounds) and
Example 20/21 (gPTAc bookkeeping).
"""

import math

import pytest

from repro import sta
from repro.core import (
    cmin,
    gap_positions,
    gms_reduce_to_size,
    greedy_reduce_to_size,
    max_error,
    reduce_to_error,
    reduce_to_size,
    sse_of_run,
)
from repro.core.dp import _ErrorMatrix


class TestFigure1:
    def test_ita_result(self, proj_ita):
        assert [
            (r["proj"], r["avg_sal"], r.interval.start, r.interval.end)
            for r in proj_ita
        ] == [
            ("A", 800.0, 1, 2),
            ("A", 600.0, 3, 3),
            ("A", 500.0, 4, 4),
            ("A", 350.0, 5, 6),
            ("A", 300.0, 7, 7),
            ("B", 500.0, 4, 5),
            ("B", 500.0, 7, 8),
        ]

    def test_sta_result(self, proj_relation, proj_aggregates):
        result = sta(proj_relation, ["proj"], proj_aggregates, span_length=4)
        assert [(r["proj"], r["avg_sal"]) for r in result] == [
            ("A", 500.0), ("A", 350.0), ("B", 500.0), ("B", 500.0),
        ]

    def test_pta_result_of_size_4(self, proj_segments):
        result = reduce_to_size(proj_segments, 4)
        assert [
            (s.group[0], round(s.values[0], 2), s.interval.start, s.interval.end)
            for s in result.segments
        ] == [
            ("A", 733.33, 1, 3),
            ("A", 375.0, 4, 7),
            ("B", 500.0, 4, 5),
            ("B", 500.0, 7, 8),
        ]


class TestSection4Examples:
    def test_example_5_merge_error(self, proj_segments):
        assert sse_of_run(proj_segments[0:2]) == pytest.approx(26666.67, abs=1)

    def test_cmin_is_three(self, proj_segments):
        assert cmin(proj_segments) == 3

    def test_example_6_optimal_error(self, proj_segments):
        assert reduce_to_size(proj_segments, 4).error == pytest.approx(49166.67, abs=1)

    def test_example_7_maximal_reduction(self, proj_segments):
        result = reduce_to_error(proj_segments, 1.0)
        assert result.size == 3


class TestSection5Examples:
    def test_example_12_prefix_sums_and_error(self, proj_segments):
        from repro.core import PrefixSums

        prefix = PrefixSums(proj_segments)
        assert prefix.sse(1, 2) == pytest.approx(5000.0)

    def test_example_13_gap_vector(self, proj_segments):
        assert gap_positions(proj_segments) == [5, 6]

    def test_figure_4_error_matrix(self, proj_segments):
        """Row-by-row comparison with the error matrix of Fig. 4."""
        expected = {
            (1, 1): 0, (1, 2): 26666, (1, 3): 67500, (1, 4): 208333,
            (1, 5): 269285, (1, 6): math.inf, (1, 7): math.inf,
            (2, 2): 0, (2, 3): 5000, (2, 4): 41666, (2, 5): 49166,
            (2, 6): 269285, (2, 7): math.inf,
            (3, 3): 0, (3, 4): 5000, (3, 5): 6666, (3, 6): 49166,
            (3, 7): 269285,
            (4, 4): 0, (4, 5): 1666, (4, 6): 6666, (4, 7): 49166,
        }
        matrix = _ErrorMatrix(proj_segments, None, optimized=True)
        rows = {}
        for k in range(1, 5):
            rows[k] = list(matrix.fill_next_row())
        for (k, i), value in expected.items():
            got = rows[k][i]
            if math.isinf(value):
                assert math.isinf(got), f"E[{k}][{i}] should be infinite"
            else:
                assert got == pytest.approx(value, abs=1.0), f"E[{k}][{i}]"

    def test_figure_5_split_points(self, proj_segments):
        """The split points of the optimal reduction (framed cells of Fig. 5)."""
        matrix = _ErrorMatrix(proj_segments, None, optimized=True)
        for _ in range(4):
            matrix.fill_next_row()
        splits = matrix.split_rows
        assert splits[4][7] == 6
        assert splits[3][6] == 5
        assert splits[2][5] == 2
        assert splits[1][2] == 0

    def test_example_14_upper_bounds(self, proj_segments):
        matrix = _ErrorMatrix(proj_segments, None, optimized=True)
        assert matrix._upper_bound(1) == 5
        assert matrix._upper_bound(2) == 6
        assert matrix._upper_bound(3) == 7
        assert matrix._upper_bound(4) == 7

    def test_example_15_lower_bound(self, proj_segments):
        matrix = _ErrorMatrix(proj_segments, None, optimized=True)
        assert matrix._lower_bound(3, 6) == 5


class TestSection6Examples:
    def test_example_17_greedy_error_and_ratio(self, proj_segments):
        greedy = gms_reduce_to_size(proj_segments, 4)
        optimal = reduce_to_size(proj_segments, 4)
        assert greedy.error == pytest.approx(63000.0, abs=1)
        assert greedy.error / optimal.error == pytest.approx(1.28, abs=0.01)

    def test_figure_9_dendrogram_result(self, proj_segments):
        result = gms_reduce_to_size(proj_segments, 4)
        assert [
            (s.group[0], round(s.values[0], 2)) for s in result.segments
        ] == [("A", 800.0), ("A", 420.0), ("B", 500.0), ("B", 500.0)]

    def test_example_21_heap_bound(self, proj_segments):
        """gPTAc with c = 3 and δ = 1 keeps at most five tuples in the heap."""
        result = greedy_reduce_to_size(iter(proj_segments), 3, delta=1)
        assert result.max_heap_size == 5
        assert result.size == 3

    def test_sse_max_of_running_example(self, proj_segments):
        assert max_error(proj_segments) == pytest.approx(269285.714, abs=1)
