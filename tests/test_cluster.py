"""Cluster tier: transport framing, remote shard reduction, fault paths.

The normative transport framing rules live in ``docs/FORMATS.md`` § 8;
each rule there cites its enforcing test in this file.  The distributed
reduction contract under test is the one the coordinator promises:
``reduce_cluster(...)`` is bit-identical to ``run_sharded(workers=1)``
for every cluster size, worker placement, and mid-job worker death.
"""

from __future__ import annotations

import socket
import struct
import time
import zlib

import numpy as np
import pytest

from repro.api import ExecutionPolicy
from repro.api.plan import PlanError
from repro.cluster import (
    Connection,
    RemoteError,
    TransportError,
    parse_address,
    recv_frame,
    reduce_cluster,
    request_with_retries,
    send_frame,
    start_worker,
)
from repro.cluster.transport import (
    FRAME_MAGIC,
    FRAME_VERSION,
    KIND_PING,
    KIND_PONG,
    KIND_REDUCE,
    KIND_TRAJECTORY,
    MAX_FRAME_BYTES,
    decode_trajectory,
    encode_trajectory,
    error_payload,
    pack_envelope,
    unpack_envelope,
)
from repro.cluster.coordinator import encode_shard_request
from repro.datasets import synthetic_sequential_segments
from repro.obs import metrics as _metrics
from repro.parallel import encode_segments, run_sharded
from repro.pipeline import compress
from repro.util import failpoints
from repro.util.deadline import DeadlineExceeded, deadline_scope
from repro.util.health import SHARED as SHARED_HEALTH
from repro.util.health import PeerHealth

_HEADER = struct.Struct("<4sHBBII")

#: An address nothing listens on: port 1 is privileged and unbound.
DEAD = "127.0.0.1:1"


def _pair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    return left, right


def _raw_frame(magic=FRAME_MAGIC, version=FRAME_VERSION, kind=KIND_PING,
               payload=b"", length=None, crc=None):
    if length is None:
        length = len(payload)
    if crc is None:
        crc = zlib.crc32(payload)
    return _HEADER.pack(magic, version, kind, 0, length, crc) + payload


@pytest.fixture
def workers():
    """Start reducer workers on demand; shut every one down afterwards."""
    started = []

    def _start(count=2):
        for _ in range(count):
            worker, _ = start_worker()
            started.append(worker)
        return [worker.address for worker in started]

    yield _start
    for worker in started:
        worker.shutdown()
        worker.server_close()


# ----------------------------------------------------------------------
# Frame layout (FORMATS.md § 8.1)
# ----------------------------------------------------------------------
class TestFraming:
    def test_frame_roundtrip(self):
        left, right = _pair()
        send_frame(left, KIND_REDUCE, b"shard bytes")
        kind, payload = recv_frame(right)
        assert (kind, payload) == (KIND_REDUCE, b"shard bytes")

    def test_header_is_sixteen_little_endian_bytes(self):
        left, right = _pair()
        send_frame(left, KIND_PING, b"abc")
        raw = right.recv(1 << 16)
        assert len(raw) == _HEADER.size + 3 == 19
        magic, version, kind, reserved, length, crc = _HEADER.unpack(
            raw[: _HEADER.size]
        )
        assert magic == FRAME_MAGIC == b"PTAF"
        assert version == FRAME_VERSION == 1
        assert (kind, reserved, length) == (KIND_PING, 0, 3)
        assert crc == zlib.crc32(b"abc")

    def test_torn_header_raises(self):
        left, right = _pair()
        left.sendall(_raw_frame(payload=b"xyz")[:7])
        left.close()
        with pytest.raises(TransportError, match="mid-frame header"):
            recv_frame(right)

    def test_torn_payload_raises(self):
        left, right = _pair()
        left.sendall(_raw_frame(payload=b"promised-bytes")[:-4])
        left.close()
        with pytest.raises(TransportError, match="mid-frame payload"):
            recv_frame(right)

    def test_crc_mismatch_raises(self):
        left, right = _pair()
        frame = bytearray(_raw_frame(payload=b"sensitive"))
        frame[-1] ^= 0xFF  # flip one payload bit
        left.sendall(bytes(frame))
        with pytest.raises(TransportError, match="CRC"):
            recv_frame(right)

    def test_wrong_magic_raises(self):
        left, right = _pair()
        left.sendall(_raw_frame(magic=b"NOPE"))
        with pytest.raises(TransportError, match="magic"):
            recv_frame(right)

    def test_wrong_version_raises(self):
        left, right = _pair()
        left.sendall(_raw_frame(version=FRAME_VERSION + 1))
        with pytest.raises(TransportError, match="version"):
            recv_frame(right)

    def test_oversized_length_rejected_before_reading_payload(self):
        left, right = _pair()
        left.sendall(_raw_frame(length=MAX_FRAME_BYTES + 1, crc=0))
        with pytest.raises(TransportError, match="exceeds"):
            recv_frame(right)


# ----------------------------------------------------------------------
# Envelope and trajectory payloads (FORMATS.md § 8.2–8.3)
# ----------------------------------------------------------------------
class TestEnvelope:
    def test_envelope_roundtrip_keeps_body_verbatim(self):
        meta = {"key": "sensor", "seq": 41}
        body = bytes(range(256))
        restored_meta, restored_body = unpack_envelope(
            pack_envelope(meta, body), "test"
        )
        assert restored_meta == meta
        assert restored_body == body

    def test_truncated_envelope_raises(self):
        with pytest.raises(TransportError, match="too short"):
            unpack_envelope(b"\x07", "test")

    def test_envelope_length_overrun_raises(self):
        blob = pack_envelope({"key": "k"}, b"")[:-2]
        with pytest.raises(TransportError, match="promises"):
            unpack_envelope(blob, "test")

    def test_non_object_json_raises(self):
        payload = struct.pack("<I", 2) + b"[]"
        with pytest.raises(TransportError, match="JSON object"):
            unpack_envelope(payload, "test")


class TestTrajectoryCodec:
    def test_trajectory_roundtrip(self):
        boundaries = np.array([3, 7, 11], dtype=np.int64)
        keys = np.array([0.5, 1.25, 9.75], dtype=np.float64)
        restored = decode_trajectory(
            encode_trajectory((boundaries, keys, 42.5))
        )
        np.testing.assert_array_equal(restored[0], boundaries)
        np.testing.assert_array_equal(restored[1], keys)
        assert restored[2] == 42.5

    def test_missing_column_raises(self):
        from repro.cluster.transport import (
            TRAJECTORY_MAGIC,
            TRAJECTORY_VERSION,
        )
        from repro.storage.columns import pack_columns

        payload = pack_columns(
            {"boundaries": np.array([1], dtype=np.int64)},
            TRAJECTORY_MAGIC,
            TRAJECTORY_VERSION,
        )
        with pytest.raises(TransportError, match="missing columns"):
            decode_trajectory(payload)

    def test_mismatched_columns_raise(self):
        blob = encode_trajectory(
            (np.array([1, 2], dtype=np.int64), np.array([0.5]), 1.0)
        )
        with pytest.raises(TransportError, match="malformed"):
            decode_trajectory(blob)


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.1.2.3:9041") == ("10.1.2.3", 9041)

    @pytest.mark.parametrize(
        "address", ["localhost", ":9041", "host:", "host:abc", "host:0",
                    "host:70000"]
    )
    def test_malformed_addresses_are_rejected(self, address):
        with pytest.raises(TransportError):
            parse_address(address)


# ----------------------------------------------------------------------
# Connection, error frames, retry ladder (FORMATS.md § 8.4)
# ----------------------------------------------------------------------
class TestConnection:
    def test_ping_pong(self, workers):
        (address,) = workers(1)
        with Connection(address) as connection:
            kind, payload = connection.request(KIND_PING)
        assert (kind, payload) == (KIND_PONG, b"")

    def test_error_frame_becomes_remote_error_with_code(self, workers):
        (address,) = workers(1)
        with Connection(address) as connection:
            with pytest.raises(RemoteError) as excinfo:
                connection.request(77, b"")
        assert excinfo.value.code == "bad_request"
        assert "unsupported frame kind" in str(excinfo.value)

    def test_unreachable_peer_raises_transport_error(self):
        with pytest.raises(TransportError, match="connect"):
            Connection(DEAD, connect_timeout=0.2)

    def test_connect_failpoint_injects_failure(self, workers):
        (address,) = workers(1)
        with failpoints.activated(
            {"transport.connect": failpoints.Return("injected refusal")}
        ):
            with pytest.raises(TransportError, match="injected refusal"):
                Connection(address)

    def test_send_failpoint_surfaces_as_transport_error(self, workers):
        (address,) = workers(1)
        with Connection(address) as connection:
            with failpoints.activated(
                {"transport.send": failpoints.Raise(
                    OSError(32, "Broken pipe"))}
            ):
                with pytest.raises(TransportError, match="send"):
                    connection.send(KIND_PING)

    def test_error_payload_matches_http_error_shape(self):
        import json

        decoded = json.loads(error_payload("boom", "internal"))
        assert decoded == {"error": "boom", "code": "internal"}


class TestRetries:
    def test_rotation_reaches_the_live_peer(self, workers):
        (address,) = workers(1)
        answer = request_with_retries(
            [DEAD, address], KIND_PING, b"", expect=KIND_PONG,
            retries=0, connect_timeout=0.2,
        )
        assert answer == b""

    def test_bad_request_is_raised_immediately(self, workers):
        (address,) = workers(1)
        with pytest.raises(RemoteError) as excinfo:
            request_with_retries(
                [address, address], KIND_REDUCE, b"garbage",
                expect=KIND_TRAJECTORY, retries=2, backoff=0.0,
            )
        assert excinfo.value.code == "bad_request"

    def test_exhausted_retries_raise_the_last_failure(self):
        with pytest.raises(TransportError):
            request_with_retries(
                [DEAD], KIND_PING, b"", expect=KIND_PONG,
                retries=1, backoff=0.0, connect_timeout=0.2,
            )

    def test_no_addresses_is_refused(self):
        with pytest.raises(TransportError, match="no addresses"):
            request_with_retries([], KIND_PING, b"", expect=KIND_PONG)

    def test_recv_failpoint_is_retried_to_success(self, workers):
        (address,) = workers(1)
        # First receive tears; the retry round succeeds against the same
        # (healed) peer.  The worker-side handler also evaluates the
        # site, hence the generous budget accounting: one client firing.
        with failpoints.activated(
            {"transport.recv": failpoints.Raise(
                TransportError("injected torn read"), times=1)}
        ):
            answer = request_with_retries(
                [address], KIND_PING, b"", expect=KIND_PONG,
                retries=2, backoff=0.0,
            )
        assert answer == b""


# ----------------------------------------------------------------------
# Distributed reduction: bit-identity and fault fallbacks
# ----------------------------------------------------------------------
def _stream(n=3000, dims=2, seed=11):
    return synthetic_sequential_segments(n, dims, seed=seed)


def _assert_same(result, oracle):
    assert result.segments == oracle.segments
    assert result.error == oracle.error
    assert result.size == oracle.size
    assert result.input_size == oracle.input_size


class TestClusterReduction:
    def test_bit_identical_to_sharded_size_budget(self, workers):
        addresses = workers(2)
        stream = _stream()
        oracle = run_sharded(stream, size=120, workers=1, shard_size=256)
        result = reduce_cluster(
            stream, size=120, cluster=addresses, shard_size=256
        )
        _assert_same(result, oracle)

    def test_bit_identical_to_sharded_error_budget(self, workers):
        addresses = workers(2)
        stream = _stream()
        oracle = run_sharded(
            stream, max_error=0.05, workers=1, shard_size=256
        )
        result = reduce_cluster(
            stream, max_error=0.05, cluster=addresses, shard_size=256
        )
        _assert_same(result, oracle)

    def test_worker_count_does_not_change_the_answer(self, workers):
        addresses = workers(3)
        stream = _stream(1500)
        single = reduce_cluster(
            stream, size=90, cluster=addresses[:1], shard_size=200
        )
        many = reduce_cluster(
            stream, size=90, cluster=addresses, shard_size=200
        )
        _assert_same(many, single)

    def test_dead_address_falls_back_to_live_peers(self, workers):
        addresses = workers(1)
        stream = _stream(1500)
        oracle = run_sharded(stream, size=90, workers=1, shard_size=200)
        result = reduce_cluster(
            stream, size=90, cluster=[DEAD] + addresses, shard_size=200,
            connect_timeout=0.2, shard_retries=1, retry_backoff=0.0,
        )
        _assert_same(result, oracle)

    def test_all_peers_dead_reduces_locally(self):
        stream = _stream(1500)
        oracle = run_sharded(stream, size=90, workers=1, shard_size=200)
        result = reduce_cluster(
            stream, size=90, cluster=[DEAD], shard_size=200,
            connect_timeout=0.2, shard_retries=0, retry_backoff=0.0,
        )
        _assert_same(result, oracle)

    def test_mid_job_worker_failures_stay_bit_identical(self, workers):
        # The first three shard requests blow up inside the worker (the
        # cluster.worker failpoint); retries and the local fallback must
        # still produce the exact plain-GMS reduction.
        addresses = workers(2)
        stream = _stream()
        oracle = run_sharded(stream, size=120, workers=1, shard_size=256)
        with failpoints.activated(
            {"cluster.worker": failpoints.Raise(times=3)}
        ):
            result = reduce_cluster(
                stream, size=120, cluster=addresses, shard_size=256,
                shard_retries=1, retry_backoff=0.0,
            )
        _assert_same(result, oracle)

    def test_empty_stream_returns_empty_result(self, workers):
        addresses = workers(1)
        result = reduce_cluster([], size=5, cluster=addresses)
        assert result.segments == []
        assert result.size == 0

    def test_cluster_must_not_be_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            reduce_cluster(_stream(10), size=5, cluster=[])

    def test_malformed_address_fails_before_any_network_io(self):
        with pytest.raises(TransportError, match="host:port"):
            reduce_cluster(_stream(10), size=5, cluster=["nonsense"])


# ----------------------------------------------------------------------
# Policy plumbing: compress(..., cluster=[...])
# ----------------------------------------------------------------------
class TestClusterPolicy:
    def test_compress_cluster_matches_workers(self, workers):
        addresses = workers(2)
        stream = _stream(1500)
        local = compress(stream, size=90, workers=1)
        remote = compress(stream, size=90, cluster=addresses)
        assert remote.segments == local.segments
        assert remote.error == local.error
        assert remote.backend == "numpy"

    def test_policy_rejects_a_bare_string(self):
        with pytest.raises(PlanError, match="not a single string"):
            ExecutionPolicy(cluster="127.0.0.1:9041")

    def test_policy_rejects_an_empty_cluster(self):
        with pytest.raises(PlanError, match="at least one address"):
            ExecutionPolicy(cluster=())

    def test_policy_rejects_workers_and_cluster_together(self):
        with pytest.raises(PlanError, match="mutually exclusive"):
            ExecutionPolicy(workers=2, cluster=("127.0.0.1:9041",))

    def test_cluster_requires_the_greedy_method(self):
        with pytest.raises(PlanError, match="only supported for"):
            compress(
                _stream(10), size=5, method="dp",
                cluster=["127.0.0.1:9041"],
            )


# ----------------------------------------------------------------------
# Peer health circuit breakers in the retry ladder
# ----------------------------------------------------------------------
class TestBreakers:
    def test_failures_open_the_breaker(self):
        health = PeerHealth(threshold=2, cooldown=60.0)
        for _ in range(2):
            with pytest.raises(TransportError):
                request_with_retries(
                    [DEAD], KIND_PING, b"", expect=KIND_PONG,
                    retries=0, connect_timeout=0.2, health=health,
                )
        assert health.state(DEAD) == "open"

    def test_open_breaker_refuses_without_burning_the_timeout(self):
        health = PeerHealth(threshold=1, cooldown=60.0)
        health.failure(DEAD)  # opened by an earlier caller
        t0 = time.monotonic()
        with pytest.raises(TransportError, match="circuit breaker"):
            request_with_retries(
                [DEAD], KIND_PING, b"", expect=KIND_PONG,
                retries=0, connect_timeout=5.0, health=health,
            )
        # No dial happened: the refusal is instant, not a connect
        # timeout's worth of waiting.
        assert time.monotonic() - t0 < 1.0

    def test_half_open_probe_readmits_a_revived_peer(self, workers):
        (address,) = workers(1)
        health = PeerHealth(threshold=1, cooldown=0.01)
        health.failure(address)  # the peer "died" once
        assert health.state(address) == "open"
        time.sleep(0.02)  # cooldown elapses; next caller gets the probe
        answer = request_with_retries(
            [address], KIND_PING, b"", expect=KIND_PONG,
            retries=0, health=health,
        )
        assert answer == b""
        assert health.state(address) == "closed"
        # The lifecycle is visible on the metrics surface.
        assert _metrics.value(
            "repro_peer_breaker_state", peer=address
        ) == 0
        assert "repro_peer_breaker_state" in _metrics.render()

    def test_reduce_cluster_skips_peers_with_open_breakers(self, workers):
        addresses = workers(1)
        stream = _stream(1500)
        oracle = run_sharded(stream, size=90, workers=1, shard_size=200)
        for _ in range(3):
            SHARED_HEALTH.failure(DEAD)  # written off by earlier traffic
        t0 = time.monotonic()
        result = reduce_cluster(
            stream, size=90, cluster=[DEAD] + addresses, shard_size=200,
            connect_timeout=5.0, shard_retries=0, retry_backoff=0.0,
        )
        _assert_same(result, oracle)
        # Seven shards, each rotated through DEAD first: without the
        # breaker that is 7 connect timeouts of dead waiting.
        assert time.monotonic() - t0 < 5.0
        assert SHARED_HEALTH.state(DEAD) == "open"


# ----------------------------------------------------------------------
# End-to-end deadlines across the cluster hop
# ----------------------------------------------------------------------
class TestClusterDeadlines:
    def test_an_expired_deadline_fails_before_dialing(self):
        with deadline_scope(0.001):
            time.sleep(0.01)
            with pytest.raises(DeadlineExceeded):
                reduce_cluster(
                    _stream(100), size=10, cluster=[DEAD],
                    connect_timeout=0.2, retry_backoff=0.0,
                )

    def test_a_live_deadline_keeps_the_answer_bit_identical(self, workers):
        addresses = workers(2)
        stream = _stream(1500)
        oracle = run_sharded(stream, size=90, workers=1, shard_size=200)
        with deadline_scope(30.0):
            result = reduce_cluster(
                stream, size=90, cluster=addresses, shard_size=200
            )
        _assert_same(result, oracle)

    def _shard_payload(self, deadline_budget):
        stream = _stream(100)
        encoded = encode_segments(stream)
        w2 = np.ones(encoded.dimensions, dtype=np.float64)
        return encode_shard_request(
            encoded, 0, len(encoded), w2, None, deadline_budget
        )

    def test_worker_refuses_an_exhausted_budget(self, workers):
        (address,) = workers(1)
        with Connection(address) as connection:
            with pytest.raises(RemoteError) as excinfo:
                connection.request(
                    KIND_REDUCE, self._shard_payload(0.0)
                )
        assert excinfo.value.code == "deadline_exceeded"

    def test_deadline_exceeded_is_not_retried(self, workers):
        (address,) = workers(1)
        with pytest.raises(RemoteError) as excinfo:
            request_with_retries(
                [address, address], KIND_REDUCE,
                self._shard_payload(0.0), expect=KIND_TRAJECTORY,
                retries=3, backoff=0.0,
            )
        assert excinfo.value.code == "deadline_exceeded"

    def test_non_numeric_budget_is_a_bad_request(self, workers):
        (address,) = workers(1)
        with Connection(address) as connection:
            with pytest.raises(RemoteError) as excinfo:
                connection.request(
                    KIND_REDUCE, self._shard_payload("soon")
                )
        assert excinfo.value.code == "bad_request"
