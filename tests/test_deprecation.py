"""The legacy ``error=`` alias warns; canonical ``max_error=`` stays silent.

Both shim doors (:func:`repro.pta` and :func:`repro.compress`) accept the
historical ``error=`` spelling of the error budget.  It keeps working —
same result, same validation — but now announces its deprecation, while
the canonical ``max_error=`` spelling must never warn.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro import Interval, TemporalRelation, compress, pta
from repro.api import PlanError, resolve_error_alias
from repro.core import AggregateSegment

AGGS = {"avg_sal": ("avg", "sal")}


def relation() -> TemporalRelation:
    return TemporalRelation.from_records(
        columns=("proj", "sal"),
        records=[
            ("A", 800, Interval(1, 4)),
            ("A", 400, Interval(3, 6)),
            ("B", 300, Interval(4, 7)),
        ],
    )


def segments() -> list[AggregateSegment]:
    rng = random.Random(5)
    return [
        AggregateSegment((), (rng.uniform(0, 10),), Interval(t, t))
        for t in range(20)
    ]


class TestLegacyErrorAliasWarns:
    def test_pta_error_keyword_warns_and_still_works(self):
        with pytest.warns(DeprecationWarning, match="legacy alias"):
            legacy = pta(relation(), ["proj"], AGGS, error=0.5)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            canonical = pta(relation(), ["proj"], AGGS, max_error=0.5)
        assert legacy.rows() == canonical.rows()

    def test_compress_error_keyword_warns_and_still_works(self):
        with pytest.warns(DeprecationWarning, match="legacy alias"):
            legacy = compress(segments(), error=0.4)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            canonical = compress(segments(), max_error=0.4)
        assert legacy.segments == canonical.segments

    def test_max_error_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning becomes a failure
            pta(relation(), ["proj"], AGGS, max_error=0.3)
            compress(segments(), max_error=0.3)
            compress(segments(), size=5)  # size budgets are silent too

    def test_double_spelling_still_rejected(self):
        with pytest.raises(PlanError, match="only one"):
            compress(segments(), error=0.5, max_error=0.5)

    def test_resolver_unit_behaviour(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_error_alias(None, 0.25) == 0.25
            assert resolve_error_alias(None, None) is None
        with pytest.warns(DeprecationWarning, match="max_error"):
            assert resolve_error_alias(0.25, None) == 0.25
