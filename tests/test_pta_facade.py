"""Unit tests for the PTA operator facade and helpers."""

import pytest

from repro import (
    Interval,
    estimate_max_error,
    gpta_error_bounded,
    gpta_size_bounded,
    ita,
    pta,
    pta_error_bounded,
    pta_size_bounded,
    reduce_ita,
)
from repro.core import max_error, segments_from_relation
from repro.datasets import synthetic_relation, value_columns


class TestPTAOperator:
    def test_size_bounded_matches_paper(self, proj_relation, proj_aggregates):
        result = pta(proj_relation, ["proj"], proj_aggregates, size=4)
        rows = [
            (r["proj"], round(r["avg_sal"], 2), r.interval) for r in result
        ]
        assert rows == [
            ("A", 733.33, Interval(1, 3)),
            ("A", 375.0, Interval(4, 7)),
            ("B", 500.0, Interval(4, 5)),
            ("B", 500.0, Interval(7, 8)),
        ]

    def test_requires_exactly_one_bound(self, proj_relation, proj_aggregates):
        with pytest.raises(ValueError):
            pta(proj_relation, ["proj"], proj_aggregates)
        with pytest.raises(ValueError):
            pta(proj_relation, ["proj"], proj_aggregates, size=4, error=0.1)

    def test_unknown_method_rejected(self, proj_relation, proj_aggregates):
        with pytest.raises(ValueError):
            pta(proj_relation, ["proj"], proj_aggregates, size=4, method="magic")

    def test_error_bounded_respects_threshold(self, proj_relation, proj_aggregates):
        result = pta(proj_relation, ["proj"], proj_aggregates, error=0.25)
        ita_result = ita(proj_relation, ["proj"], proj_aggregates)
        original = segments_from_relation(ita_result, ["proj"], ["avg_sal"])
        reduced = segments_from_relation(result, ["proj"], ["avg_sal"])
        from repro.core import sse_between

        assert sse_between(original, reduced) <= 0.25 * max_error(original) + 1e-6

    def test_greedy_method_dispatch(self, proj_relation, proj_aggregates):
        greedy = pta(proj_relation, ["proj"], proj_aggregates, size=4,
                     method="greedy")
        assert len(greedy) == 4

    def test_explicit_variants_match_dispatch(self, proj_relation, proj_aggregates):
        assert pta_size_bounded(proj_relation, ["proj"], proj_aggregates, 4) == pta(
            proj_relation, ["proj"], proj_aggregates, size=4
        )
        assert pta_error_bounded(proj_relation, ["proj"], proj_aggregates, 0.3) == pta(
            proj_relation, ["proj"], proj_aggregates, error=0.3
        )
        assert gpta_size_bounded(proj_relation, ["proj"], proj_aggregates, 4) == pta(
            proj_relation, ["proj"], proj_aggregates, size=4, method="greedy"
        )

    def test_greedy_error_bounded_runs(self, proj_relation, proj_aggregates):
        result = gpta_error_bounded(
            proj_relation, ["proj"], proj_aggregates, 0.5, sample_fraction=1.0
        )
        assert 3 <= len(result) <= 7

    def test_output_schema(self, proj_relation, proj_aggregates):
        result = pta(proj_relation, ["proj"], proj_aggregates, size=4)
        assert result.schema.columns == ("proj", "avg_sal")

    def test_result_is_sequential(self, proj_relation, proj_aggregates):
        result = pta(proj_relation, ["proj"], proj_aggregates, size=4)
        assert result.is_sequential(["proj"])

    def test_multiple_aggregates_and_no_grouping(self, proj_relation):
        result = pta(
            proj_relation, [],
            {"avg_sal": ("avg", "sal"), "n": ("count", None)},
            size=3,
        )
        assert result.schema.columns == ("avg_sal", "n")
        assert len(result) == 3


class TestReduceIta:
    def test_reduces_precomputed_ita(self, proj_ita):
        reduced = reduce_ita(proj_ita, ["proj"], ["avg_sal"], size=4)
        assert len(reduced) == 4

    def test_greedy_and_error_variants(self, proj_ita):
        by_error = reduce_ita(proj_ita, ["proj"], ["avg_sal"], error=1.0)
        assert len(by_error) == 3
        greedy = reduce_ita(proj_ita, ["proj"], ["avg_sal"], size=4,
                            method="greedy")
        assert len(greedy) == 4
        greedy_error = reduce_ita(proj_ita, ["proj"], ["avg_sal"], error=1.0,
                                  method="greedy")
        assert len(greedy_error) == 3

    def test_parameter_validation(self, proj_ita):
        with pytest.raises(ValueError):
            reduce_ita(proj_ita, ["proj"], ["avg_sal"])
        with pytest.raises(ValueError):
            reduce_ita(proj_ita, ["proj"], ["avg_sal"], size=4, method="nope")


class TestEstimate:
    def test_full_sample_matches_exact_value(self, proj_relation, proj_aggregates):
        estimate = estimate_max_error(
            proj_relation, ["proj"], proj_aggregates, sample_fraction=1.0
        )
        ita_result = ita(proj_relation, ["proj"], proj_aggregates)
        segments = segments_from_relation(ita_result, ["proj"], ["avg_sal"])
        assert estimate == pytest.approx(max_error(segments))

    def test_invalid_fraction_rejected(self, proj_relation, proj_aggregates):
        with pytest.raises(ValueError):
            estimate_max_error(proj_relation, ["proj"], proj_aggregates,
                               sample_fraction=0.0)

    def test_sampled_estimate_is_finite_and_nonnegative(self):
        relation = synthetic_relation(300, dimensions=2, groups=4, seed=1)
        estimate = estimate_max_error(
            relation, ["grp"],
            {name: ("avg", name) for name in value_columns(2)},
            sample_fraction=0.2,
        )
        assert estimate >= 0.0


class TestEndToEndConsistency:
    def test_dp_never_worse_than_greedy(self):
        relation = synthetic_relation(400, dimensions=1, groups=3, seed=9)
        aggregates = {"m": ("avg", "v0")}
        ita_result = ita(relation, ["grp"], aggregates)
        segments = segments_from_relation(ita_result, ["grp"], ["m"])
        from repro.core import gms_reduce_to_size, reduce_to_size

        size = max(len(segments) // 5, segments and 1 or 1)
        from repro.core import cmin as cmin_of
        size = max(size, cmin_of(segments))
        optimal = reduce_to_size(segments, size)
        greedy = gms_reduce_to_size(segments, size)
        assert optimal.error <= greedy.error + 1e-9
