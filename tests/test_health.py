"""Per-peer circuit breakers (`repro.util.health`)."""

from __future__ import annotations

import threading

import pytest

from repro.obs import metrics as _metrics
from repro.util.health import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    PeerHealth,
    STATE_VALUES,
)

PEER = "127.0.0.1:9999"


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def health(clock):
    return PeerHealth(threshold=3, cooldown=5.0, clock=clock)


class TestBreakerLifecycle:
    def test_unknown_peers_are_implicitly_closed(self, health):
        assert health.allow(PEER)
        assert health.state(PEER) == CLOSED
        assert not health.probation(PEER)

    def test_failures_below_threshold_keep_the_breaker_closed(self, health):
        health.failure(PEER)
        health.failure(PEER)
        assert health.state(PEER) == CLOSED
        assert health.allow(PEER)

    def test_threshold_consecutive_failures_open_the_breaker(self, health):
        for _ in range(3):
            health.failure(PEER)
        assert health.state(PEER) == OPEN
        assert not health.allow(PEER)

    def test_success_resets_the_failure_streak(self, health):
        health.failure(PEER)
        health.failure(PEER)
        health.success(PEER)
        health.failure(PEER)
        health.failure(PEER)
        assert health.state(PEER) == CLOSED

    def test_open_refuses_dials_for_the_whole_cooldown(self, health, clock):
        for _ in range(3):
            health.failure(PEER)
        clock.advance(4.999)
        assert not health.allow(PEER)

    def test_cooldown_expiry_grants_exactly_one_probe(self, health, clock):
        for _ in range(3):
            health.failure(PEER)
        clock.advance(5.0)
        assert health.allow(PEER)  # the probe slot
        assert health.state(PEER) == HALF_OPEN
        assert health.probation(PEER)
        assert not health.allow(PEER)  # concurrent callers keep waiting

    def test_probe_success_closes_the_breaker(self, health, clock):
        for _ in range(3):
            health.failure(PEER)
        clock.advance(5.0)
        assert health.allow(PEER)
        health.success(PEER)
        assert health.state(PEER) == CLOSED
        assert health.allow(PEER)

    def test_probe_failure_reopens_with_a_fresh_cooldown(self, health, clock):
        for _ in range(3):
            health.failure(PEER)
        clock.advance(5.0)
        assert health.allow(PEER)
        health.failure(PEER)
        assert health.state(PEER) == OPEN
        clock.advance(4.999)
        assert not health.allow(PEER)
        clock.advance(0.001)
        assert health.allow(PEER)

    def test_breakers_are_independent_per_address(self, health):
        for _ in range(3):
            health.failure(PEER)
        assert not health.allow(PEER)
        assert health.allow("127.0.0.1:8888")

    def test_states_lists_every_tracked_peer(self, health):
        health.failure("a:1")
        for _ in range(3):
            health.failure("b:2")
        assert dict(health.states()) == {"a:1": CLOSED, "b:2": OPEN}

    def test_reset_forgets_everything(self, health):
        for _ in range(3):
            health.failure(PEER)
        health.reset()
        assert health.allow(PEER)
        assert health.states() == []


class TestValidationAndMetrics:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            PeerHealth(threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            PeerHealth(cooldown=0.0)

    def test_state_transitions_publish_the_gauge(self, health, clock):
        for _ in range(3):
            health.failure(PEER)
        assert _metrics.value("repro_peer_breaker_state", peer=PEER) == (
            STATE_VALUES[OPEN]
        )
        clock.advance(5.0)
        health.allow(PEER)
        assert _metrics.value("repro_peer_breaker_state", peer=PEER) == (
            STATE_VALUES[HALF_OPEN]
        )
        health.success(PEER)
        assert _metrics.value("repro_peer_breaker_state", peer=PEER) == (
            STATE_VALUES[CLOSED]
        )
        assert "repro_peer_breaker_state" in _metrics.render()

    def test_concurrent_probe_claims_admit_exactly_one(self, health, clock):
        for _ in range(3):
            health.failure(PEER)
        clock.advance(5.0)
        granted = []
        barrier = threading.Barrier(8)

        def claim():
            barrier.wait()
            if health.allow(PEER):
                granted.append(threading.get_ident())

        threads = [threading.Thread(target=claim) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(granted) == 1
