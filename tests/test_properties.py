"""Property-based tests (hypothesis) for the core invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro import Interval, TemporalRelation, coalesce, ita
from repro.core import (
    AggregateSegment,
    PrefixSums,
    adjacent,
    cmin,
    gms_reduce_to_size,
    greedy_reduce_to_size,
    max_error,
    merge,
    reduce_to_error,
    reduce_to_size,
    sse_between,
    sse_of_run,
)
from repro.core.greedy import DELTA_INFINITY

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
values = st.floats(min_value=-1000, max_value=1000,
                   allow_nan=False, allow_infinity=False)
lengths = st.integers(min_value=1, max_value=4)


@st.composite
def segment_lists(draw, min_size=2, max_size=25, groups=("A",), gap_chance=0.2):
    """Sorted, sequential segment lists with optional gaps and groups."""
    segments = []
    for group in groups:
        count = draw(st.integers(min_value=1, max_value=max_size // len(groups) + 1))
        position = 1
        for _ in range(count):
            if draw(st.floats(min_value=0, max_value=1)) < gap_chance:
                position += draw(st.integers(min_value=1, max_value=3))
            length = draw(lengths)
            segments.append(
                AggregateSegment(
                    (group,), (draw(values),), Interval(position, position + length - 1)
                )
            )
            position += length
    if len(segments) < min_size:
        position = segments[-1].interval.end + 1 if segments else 1
        while len(segments) < min_size:
            segments.append(
                AggregateSegment((groups[0],), (draw(values),),
                                 Interval(position, position)))
            position += 1
    return segments


@st.composite
def raw_relations(draw, max_size=20):
    """Raw temporal relations with overlapping intervals for ITA."""
    count = draw(st.integers(min_value=1, max_value=max_size))
    records = []
    for _ in range(count):
        group = draw(st.sampled_from(["x", "y"]))
        start = draw(st.integers(min_value=1, max_value=15))
        length = draw(st.integers(min_value=1, max_value=6))
        records.append((group, draw(values), Interval(start, start + length - 1)))
    return TemporalRelation.from_records(columns=("g", "v"), records=records)


# ----------------------------------------------------------------------
# Merge / error invariants
# ----------------------------------------------------------------------
@given(segment_lists())
@settings(max_examples=60, deadline=None)
def test_merge_preserves_duration_and_weighted_mean(segments):
    for left, right in zip(segments, segments[1:]):
        if not adjacent(left, right):
            continue
        merged = merge(left, right)
        assert merged.length == left.length + right.length
        expected = (
            left.length * left.values[0] + right.length * right.values[0]
        ) / merged.length
        assert math.isclose(merged.values[0], expected, rel_tol=1e-9, abs_tol=1e-9)


@given(segment_lists())
@settings(max_examples=60, deadline=None)
def test_prefix_sum_sse_matches_naive(segments):
    prefix = PrefixSums(segments)
    for first in range(len(segments)):
        for last in range(first, min(first + 6, len(segments))):
            run = segments[first:last + 1]
            if not all(adjacent(a, b) for a, b in zip(run, run[1:])):
                continue
            assert math.isclose(
                prefix.sse(first, last), sse_of_run(run), rel_tol=1e-7, abs_tol=1e-6
            )


@given(segment_lists(groups=("A", "B")))
@settings(max_examples=60, deadline=None)
def test_max_error_equals_reduction_to_cmin(segments):
    minimum = cmin(segments)
    result = reduce_to_size(segments, minimum)
    assert math.isclose(result.error, max_error(segments),
                        rel_tol=1e-7, abs_tol=1e-6)


# ----------------------------------------------------------------------
# DP invariants
# ----------------------------------------------------------------------
@given(segment_lists(groups=("A", "B")), st.integers(min_value=0, max_value=10))
@settings(max_examples=60, deadline=None)
def test_dp_result_size_error_and_structure(segments, size_offset):
    minimum = cmin(segments)
    size = min(minimum + size_offset, len(segments))
    result = reduce_to_size(segments, size)
    assert result.size == size
    # Reported error equals the recomputed SSE between input and output.
    assert math.isclose(
        result.error, sse_between(segments, result.segments),
        rel_tol=1e-7, abs_tol=1e-6,
    )
    # Total covered duration is preserved and the output stays sequential.
    assert sum(s.length for s in result.segments) == sum(
        s.length for s in segments
    )
    for left, right in zip(result.segments, result.segments[1:]):
        if left.group == right.group:
            assert left.interval.end < right.interval.start


@given(segment_lists(groups=("A", "B")))
@settings(max_examples=40, deadline=None)
def test_dp_error_is_monotone_in_size(segments):
    minimum = cmin(segments)
    sizes = range(minimum, len(segments) + 1)
    errors = [reduce_to_size(segments, size).error for size in sizes]
    for bigger, smaller in zip(errors, errors[1:]):
        assert smaller <= bigger + 1e-6


@given(segment_lists(groups=("A", "B")),
       st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_error_bounded_dp_respects_threshold_and_minimality(segments, epsilon):
    result = reduce_to_error(segments, epsilon)
    threshold = epsilon * max_error(segments)
    assert result.error <= threshold + 1e-6
    if result.size > cmin(segments):
        tighter = reduce_to_size(segments, result.size - 1)
        assert tighter.error > threshold - 1e-6


# ----------------------------------------------------------------------
# Greedy invariants
# ----------------------------------------------------------------------
@given(segment_lists(groups=("A", "B")), st.integers(min_value=0, max_value=8))
@settings(max_examples=60, deadline=None)
def test_greedy_never_beats_dp_and_reports_true_error(segments, size_offset):
    size = min(cmin(segments) + size_offset, len(segments))
    optimal = reduce_to_size(segments, size)
    greedy = gms_reduce_to_size(segments, size)
    assert greedy.size == size
    assert greedy.error >= optimal.error - 1e-6
    assert math.isclose(
        greedy.error, sse_between(segments, greedy.segments),
        rel_tol=1e-7, abs_tol=1e-6,
    )


@given(segment_lists(groups=("A",), gap_chance=0.0),
       st.integers(min_value=1, max_value=12))
@settings(max_examples=60, deadline=None)
def test_online_greedy_with_infinite_delta_equals_gms_without_gaps(segments, size):
    """Theorem 2: with δ=∞ and no gaps, gPTAc and GMS are identical.

    Without any non-adjacent pair the online algorithm never merges early,
    so its finalisation phase is exactly one GMS run over the full input.
    """
    size = max(size, cmin(segments))
    batch = gms_reduce_to_size(segments, size)
    online = greedy_reduce_to_size(iter(segments), size, delta=DELTA_INFINITY)
    assert online.segments == batch.segments
    assert math.isclose(online.error, batch.error, rel_tol=1e-9, abs_tol=1e-9)


@given(segment_lists(groups=("A", "B")), st.integers(min_value=1, max_value=12))
@settings(max_examples=60, deadline=None)
def test_online_greedy_with_infinite_delta_tracks_gms_with_gaps(segments, size):
    """With gaps, δ=∞ keeps gPTAc a valid greedy reduction of the same size.

    The paper's Theorem 2 states output identity with GMS; in rare gap
    configurations an early (Proposition 3) merge creates a new, cheaper
    candidate pair that plain GMS never sees at that stage, so the merge
    *sets* can differ even though every early merge is one GMS performs too.
    The invariants that always hold are asserted instead: equal output size,
    exact error accounting, and optimality of neither below the DP optimum.
    """
    size = max(size, cmin(segments))
    batch = gms_reduce_to_size(segments, size)
    online = greedy_reduce_to_size(iter(segments), size, delta=DELTA_INFINITY)
    assert online.size == batch.size
    assert math.isclose(
        online.error, sse_between(segments, online.segments),
        rel_tol=1e-7, abs_tol=1e-6,
    )
    optimal = reduce_to_size(segments, size)
    assert online.error >= optimal.error - 1e-6
    assert batch.error >= optimal.error - 1e-6


@given(segment_lists(groups=("A", "B")),
       st.integers(min_value=1, max_value=12),
       st.sampled_from([0, 1, 2]))
@settings(max_examples=60, deadline=None)
def test_online_greedy_output_is_valid_reduction(segments, size, delta):
    size = max(size, cmin(segments))
    result = greedy_reduce_to_size(iter(segments), size, delta=delta)
    assert cmin(segments) <= result.size <= max(size, cmin(segments))
    assert sum(s.length for s in result.segments) == sum(
        s.length for s in segments
    )
    assert math.isclose(
        result.error, sse_between(segments, result.segments),
        rel_tol=1e-7, abs_tol=1e-6,
    )
    assert result.max_heap_size <= len(segments)


# ----------------------------------------------------------------------
# Aggregation / coalescing invariants
# ----------------------------------------------------------------------
@given(raw_relations())
@settings(max_examples=50, deadline=None)
def test_ita_output_is_sequential_and_coalesced(relation):
    result = ita(relation, ["g"], {"m": ("avg", "v")})
    assert result.is_sequential(["g"])
    assert len(result) <= max(2 * len(relation) - 1, 0)
    # No two value-equivalent adjacent tuples remain (fully coalesced).
    rows = list(result)
    for left, right in zip(rows, rows[1:]):
        if left["g"] == right["g"] and left.interval.meets(right.interval):
            assert left["m"] != right["m"]


@given(raw_relations())
@settings(max_examples=50, deadline=None)
def test_ita_covers_exactly_the_argument_support(relation):
    result = ita(relation, ["g"], {"m": ("avg", "v")})
    for group in {row["g"] for row in relation}:
        argument_support = set()
        for row in relation:
            if row["g"] == group:
                argument_support.update(row.interval)
        result_support = set()
        for row in result:
            if row["g"] == group:
                result_support.update(row.interval)
        assert result_support == argument_support


def test_coalesce_idempotent_with_negative_zero():
    """Regression: 0.0 and -0.0 are one equality class but stringify
    differently, so the bucket's sort position used to depend on which
    spelling entered the run dict first — breaking idempotence.
    (Falsifying example found by hypothesis during PR 4.)"""
    relation = TemporalRelation.from_records(
        columns=("g", "v"),
        records=[
            ("x", -1.0, Interval(1, 1)),
            ("x", 0.0, Interval(1, 2)),
            ("x", -0.0, Interval(1, 1)),
        ],
    )
    once = coalesce(relation)
    assert coalesce(once) == once


@given(raw_relations())
@settings(max_examples=50, deadline=None)
def test_coalesce_is_idempotent_and_preserves_support(relation):
    once = coalesce(relation)
    twice = coalesce(once)
    assert once == twice
    support_before = set()
    for row in relation:
        support_before.update((row.values, chronon) for chronon in row.interval)
    support_after = set()
    for row in once:
        support_after.update((row.values, chronon) for chronon in row.interval)
    assert support_before == support_after
