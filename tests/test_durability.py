"""Tests for the durability tier (repro.storage.wal + repro.service.durability).

The central contract (ISSUE 6 acceptance criterion): a ``SessionStore``
recovered from checkpoints + the WAL tail serves ``summary()`` and
``QueryEngine`` answers **bit-identical** to the uncrashed process, on
both heap backends and at randomized crash points — and a torn final WAL
frame is truncated, never propagated and never a crash.  "Crashing" a
durable store here simply means abandoning it without ``close()``: every
acknowledged push is already fsynced, so the files are exactly what a
killed process leaves behind.
"""

from __future__ import annotations

import os
import random
import struct

import numpy as np
import pytest

from repro import Interval
from repro.api import Compressor, ExecutionPolicy, SizeBudget
from repro.core import AggregateSegment
from repro.service import (
    Durability,
    DurabilityError,
    FrozenEpoch,
    QueryEngine,
    Service,
    ServiceError,
    SessionStore,
    encode_result,
)
from repro.service.durability import decode_key, encode_key
from repro.service.wire import result_columns
from repro.storage.wal import (
    CHECKPOINT_MAGIC,
    WAL_MAGIC,
    WAL_VERSION,
    WalError,
    WalWriter,
    load_checkpoint,
    read_wal,
    write_checkpoint,
)

BACKENDS = ["python", "numpy"]


def stream(count: int, seed: int, groups: int = 1) -> list[AggregateSegment]:
    rng = random.Random(seed)
    segments: list[AggregateSegment] = []
    for g in range(groups):
        t = 1
        for _ in range(count):
            end = t + rng.randint(0, 3)
            segments.append(
                AggregateSegment(
                    (f"g{g}",),
                    (float(rng.randint(0, 50)), rng.random() * 10.0),
                    Interval(t, end),
                )
            )
            t = end + 1 + (rng.randint(1, 4) if rng.random() < 0.2 else 0)
    return segments


def chunked(segments, size):
    return [segments[i: i + size] for i in range(0, len(segments), size)]


# ----------------------------------------------------------------------
# WAL files
# ----------------------------------------------------------------------
class TestWalFile:
    def test_roundtrip_preserves_frames_in_order(self, tmp_path):
        path = tmp_path / "a.wal"
        frames = [b"first", b"", b"x" * 1000, b"\x00\xff"]
        with WalWriter(path) as wal:
            for frame in frames:
                wal.append(frame)
        assert read_wal(path) == frames

    def test_reopen_appends_without_second_header(self, tmp_path):
        path = tmp_path / "a.wal"
        with WalWriter(path) as wal:
            wal.append(b"one")
        with WalWriter(path) as wal:
            wal.append(b"two")
        assert read_wal(path) == [b"one", b"two"]

    def test_wrong_magic_rejected_even_in_recovery(self, tmp_path):
        path = tmp_path / "a.wal"
        path.write_bytes(struct.pack("<4sH", b"NOPE", WAL_VERSION))
        with pytest.raises(WalError, match="magic"):
            read_wal(path, recover=True)

    def test_cross_version_rejected_even_in_recovery(self, tmp_path):
        path = tmp_path / "a.wal"
        path.write_bytes(struct.pack("<4sH", WAL_MAGIC, WAL_VERSION + 1))
        with pytest.raises(WalError, match="version"):
            read_wal(path, recover=True)

    def test_short_header_rejected(self, tmp_path):
        path = tmp_path / "a.wal"
        path.write_bytes(b"PT")
        with pytest.raises(WalError, match="too short"):
            read_wal(path, recover=True)

    @pytest.mark.parametrize(
        "tail",
        [
            b"\x99",                          # torn frame header
            struct.pack("<II", 50, 123),       # header promises absent bytes
            struct.pack("<II", 4, 0) + b"abcd",  # wrong CRC
        ],
    )
    def test_torn_tail_raises_without_recover(self, tmp_path, tail):
        path = tmp_path / "a.wal"
        with WalWriter(path) as wal:
            wal.append(b"good")
        with open(path, "ab") as file:
            file.write(tail)
        with pytest.raises(WalError):
            read_wal(path)

    @pytest.mark.parametrize(
        "tail",
        [
            b"\x99",
            struct.pack("<II", 50, 123),
            struct.pack("<II", 4, 0) + b"abcd",
        ],
    )
    def test_recover_truncates_torn_tail(self, tmp_path, tail):
        path = tmp_path / "a.wal"
        with WalWriter(path) as wal:
            wal.append(b"good")
            wal.append(b"also good")
        intact_size = path.stat().st_size
        with open(path, "ab") as file:
            file.write(tail)
        assert read_wal(path, recover=True) == [b"good", b"also good"]
        assert path.stat().st_size == intact_size
        # The truncated file is clean: strict reading succeeds now.
        assert read_wal(path) == [b"good", b"also good"]

    def test_recovery_of_mid_file_corruption_drops_the_suffix(self, tmp_path):
        path = tmp_path / "a.wal"
        with WalWriter(path) as wal:
            wal.append(b"keep")
        offset = path.stat().st_size
        with WalWriter(path) as wal:
            wal.append(b"corrupt me")
            wal.append(b"casualty")
        data = bytearray(path.read_bytes())
        data[offset + 8] ^= 0xFF  # flip a payload byte -> CRC mismatch
        path.write_bytes(bytes(data))
        assert read_wal(path, recover=True) == [b"keep"]

    def test_negative_fsync_cadence_rejected(self, tmp_path):
        with pytest.raises(WalError, match="fsync_every"):
            WalWriter(tmp_path / "a.wal", fsync_every=-1)


# ----------------------------------------------------------------------
# Checkpoint files
# ----------------------------------------------------------------------
class TestCheckpointFile:
    def test_roundtrip_mmap_and_copy(self, tmp_path):
        path = tmp_path / "e.ckpt"
        columns = {
            "starts": np.arange(5, dtype=np.int64),
            "values": np.linspace(0.0, 1.0, 10).reshape(5, 2),
        }
        write_checkpoint(path, columns)
        for use_mmap in (True, False):
            loaded = load_checkpoint(path, use_mmap=use_mmap)
            assert (loaded["starts"] == columns["starts"]).all()
            assert (loaded["values"] == columns["values"]).all()

    def test_mmap_load_returns_readonly_views(self, tmp_path):
        path = tmp_path / "e.ckpt"
        write_checkpoint(path, {"a": np.arange(4, dtype=np.int64)})
        loaded = load_checkpoint(path)
        assert not loaded["a"].flags.writeable
        with pytest.raises(ValueError):
            loaded["a"][0] = 99

    def test_no_tmp_file_survives_a_completed_write(self, tmp_path):
        path = tmp_path / "e.ckpt"
        write_checkpoint(path, {"a": np.arange(4, dtype=np.int64)})
        assert os.listdir(tmp_path) == ["e.ckpt"]

    def test_wrong_magic_and_truncation_raise_wal_error(self, tmp_path):
        path = tmp_path / "e.ckpt"
        write_checkpoint(path, {"a": np.arange(4, dtype=np.int64)})
        with pytest.raises(WalError):
            load_checkpoint(path, magic=b"XXXX")
        path.write_bytes(path.read_bytes()[:-3])
        with pytest.raises(WalError):
            load_checkpoint(path)

    def test_empty_file_raises_wal_error(self, tmp_path):
        path = tmp_path / "e.ckpt"
        path.write_bytes(b"")
        with pytest.raises(WalError):
            load_checkpoint(path)


# ----------------------------------------------------------------------
# Key encoding and FrozenEpoch
# ----------------------------------------------------------------------
class TestKeysAndEpochs:
    @pytest.mark.parametrize(
        "key", ["plain", "with/slash", "with space", "pct%2Ftrick", "日本語"]
    )
    def test_key_encoding_roundtrips_and_is_path_safe(self, key):
        name = encode_key(key)
        assert "/" not in name and decode_key(name) == key

    def test_distinct_keys_stay_distinct(self):
        assert encode_key("a/b") != encode_key("a%2Fb")

    @pytest.mark.parametrize("key", ["", 7, ("t",), None])
    def test_non_string_keys_rejected(self, key):
        with pytest.raises(DurabilityError):
            encode_key(key)

    def test_demoted_epoch_matches_resident_epoch(self, tmp_path):
        session = Compressor(SizeBudget(10))
        session.push(stream(60, seed=1))
        result = session.finalize()
        path = tmp_path / "epoch-00000000.ckpt"
        write_checkpoint(path, result_columns(result))
        resident = FrozenEpoch.from_result(result)
        demoted = FrozenEpoch.from_checkpoint(path)
        assert resident.resident and not demoted.resident
        assert demoted.error == resident.error == result.error
        assert demoted.input_size == result.input_size
        assert demoted.result() == result
        for attr in ("starts", "ends", "values", "group_ids"):
            assert (
                getattr(demoted.columns(), attr)
                == getattr(resident.columns(), attr)
            ).all()

    def test_epoch_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(DurabilityError):
            FrozenEpoch()


# ----------------------------------------------------------------------
# Crash injection on the store
# ----------------------------------------------------------------------
def feed(store, key, segments, chunk_size):
    for chunk in chunked(segments, chunk_size):
        store.push(key, chunk)


class TestStoreRecovery:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_recovered_store_is_bit_identical(self, tmp_path, backend):
        policy = ExecutionPolicy(backend=backend)
        segments = stream(120, seed=2, groups=2)
        live = SessionStore(size=25, policy=policy, data_dir=tmp_path)
        feed(live, "k", segments, 9)
        recovered = SessionStore(size=25, policy=policy, data_dir=tmp_path)
        assert encode_result(live.snapshot("k")) == encode_result(
            recovered.snapshot("k")
        )
        assert live.pushed("k") == recovered.pushed("k")
        ours, theirs = QueryEngine(live), QueryEngine(recovered)
        for t1, t2 in [(1, 50), (10, 400), (0, 1000)]:
            for fn in ("avg", "sum", "min", "max"):
                assert ours.range_agg("k", t1, t2, fn, group=("g1",)) == \
                    theirs.range_agg("k", t1, t2, fn, group=("g1",))

    def test_empty_data_dir_boots_empty(self, tmp_path):
        store = SessionStore(size=10, data_dir=tmp_path / "fresh")
        assert store.keys() == [] and store.stats().pushed_segments == 0

    def test_empty_wal_boot(self, tmp_path):
        """A WAL holding only its header recovers to an empty live session."""
        store = SessionStore(size=10, data_dir=tmp_path)
        store.push("k", stream(5, seed=3))
        # Manufacture the moment just after epoch creation: header, no frames.
        wal = tmp_path / encode_key("k") / "epoch-00000000.wal"
        wal.write_bytes(struct.pack("<4sH", WAL_MAGIC, WAL_VERSION))
        recovered = SessionStore(size=10, data_dir=tmp_path)
        assert recovered.pushed("k") == 0
        assert recovered.is_live("k")
        recovered.push("k", stream(5, seed=3))
        assert recovered.pushed("k") == 5

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_torn_final_frame_is_truncated_and_replayed(
        self, tmp_path, backend
    ):
        policy = ExecutionPolicy(backend=backend)
        segments = stream(80, seed=4)
        live = SessionStore(size=20, policy=policy, data_dir=tmp_path)
        feed(live, "k", segments[:72], 8)
        expected = encode_result(live.snapshot("k"))
        # The crash: a push was being appended when the process died.
        wal = tmp_path / encode_key("k") / "epoch-00000000.wal"
        with open(wal, "ab") as file:
            file.write(struct.pack("<II", 4096, 1234) + b"partial payload")
        recovered = SessionStore(size=20, policy=policy, data_dir=tmp_path)
        assert encode_result(recovered.snapshot("k")) == expected
        # And the store keeps accepting pushes afterwards.
        recovered.push("k", segments[72:])
        assert recovered.pushed("k") == 80

    def test_crash_between_checkpoint_and_wal_delete(self, tmp_path):
        """Both files exist for one epoch: the checkpoint wins."""
        store = SessionStore(size=15, data_dir=tmp_path)
        feed(store, "k", stream(50, seed=5), 10)
        expected = encode_result(store.snapshot("k"))
        key_dir = tmp_path / encode_key("k")
        wal_bytes = (key_dir / "epoch-00000000.wal").read_bytes()
        store.freeze("k")  # demotes: writes ckpt, deletes wal
        frozen_expected = encode_result(store.snapshot("k"))
        # Resurrect the WAL next to its checkpoint — the crash window.
        (key_dir / "epoch-00000000.wal").write_bytes(wal_bytes)
        recovered = SessionStore(size=15, data_dir=tmp_path)
        assert encode_result(recovered.snapshot("k")) == frozen_expected
        assert not (key_dir / "epoch-00000000.wal").exists()
        assert expected  # sanity: the pre-freeze snapshot existed

    def test_crash_between_finalize_and_checkpoint(self, tmp_path):
        """An old epoch with WAL but no checkpoint: demotion is finished."""
        store = SessionStore(size=15, data_dir=tmp_path)
        segments = stream(60, seed=6)
        feed(store, "k", segments[:30], 10)
        key_dir = tmp_path / encode_key("k")
        old_wal = (key_dir / "epoch-00000000.wal").read_bytes()
        store.freeze("k")
        feed(store, "k", segments[30:], 10)
        expected = encode_result(store.snapshot("k"))
        # The crash window: epoch 0's checkpoint never landed, its WAL
        # still exists, and epoch 1 is already live.
        (key_dir / "epoch-00000000.ckpt").unlink()
        (key_dir / "epoch-00000000.wal").write_bytes(old_wal)
        recovered = SessionStore(size=15, data_dir=tmp_path)
        assert encode_result(recovered.snapshot("k")) == expected
        assert (key_dir / "epoch-00000000.ckpt").exists()
        assert not (key_dir / "epoch-00000000.wal").exists()

    def test_stale_tmp_checkpoint_is_discarded(self, tmp_path):
        store = SessionStore(size=15, data_dir=tmp_path)
        feed(store, "k", stream(40, seed=7), 10)
        expected = encode_result(store.snapshot("k"))
        key_dir = tmp_path / encode_key("k")
        (key_dir / "epoch-00000000.ckpt.tmp").write_bytes(b"half a write")
        recovered = SessionStore(size=15, data_dir=tmp_path)
        assert encode_result(recovered.snapshot("k")) == expected
        assert not (key_dir / "epoch-00000000.ckpt.tmp").exists()

    def test_demoted_key_recovers_from_checkpoints_alone(self, tmp_path):
        store = SessionStore(size=12, data_dir=tmp_path, max_sessions=1)
        a, b = stream(40, seed=8), stream(40, seed=9)
        feed(store, "a", a, 8)
        feed(store, "b", b, 8)   # LRU bound demotes "a" to disk
        assert not store.is_live("a") and store.is_live("b")
        expected_a = encode_result(store.snapshot("a"))
        recovered = SessionStore(size=12, data_dir=tmp_path, max_sessions=1)
        assert not recovered.is_live("a")
        assert [e.resident for e in recovered.frozen_epochs("a")] == [False]
        assert encode_result(recovered.snapshot("a")) == expected_a
        # A demoted key reopens as a fresh epoch on its next push.
        recovered.push("a", a[:5])
        assert recovered.is_live("a")
        assert recovered.pushed("a") == 45

    def test_checkpoint_every_bounds_the_wal(self, tmp_path):
        store = SessionStore(
            size=10, data_dir=tmp_path, checkpoint_every=25
        )
        feed(store, "k", stream(100, seed=10), 10)
        key_dir = tmp_path / encode_key("k")
        checkpoints = sorted(
            f for f in os.listdir(key_dir) if f.endswith(".ckpt")
        )
        # Chunks of 10 cross the 25-tuple threshold at 30 pushed tuples,
        # so epochs demote at 30/60/90 and 10 tuples stay live.
        assert len(checkpoints) == 3
        assert len(store.frozen_epochs("k")) == 3
        assert store.pushed("k") == 100
        recovered = SessionStore(
            size=10, data_dir=tmp_path, checkpoint_every=25
        )
        assert encode_result(recovered.snapshot("k")) == encode_result(
            store.snapshot("k")
        )

    def test_durable_store_rejects_non_string_keys(self, tmp_path):
        store = SessionStore(size=10, data_dir=tmp_path)
        with pytest.raises(ServiceError, match="string keys"):
            store.push(("tuple", "key"), stream(3, seed=11))

    def test_checkpoint_every_requires_data_dir(self):
        with pytest.raises(ServiceError, match="data_dir"):
            SessionStore(size=10, checkpoint_every=5)

    def test_service_facade_passthrough(self, tmp_path):
        service = Service(size=20, data_dir=tmp_path, checkpoint_every=30)
        segments = stream(45, seed=12)
        service.push("k", segments)
        expected = encode_result(service.summary("k"))
        service.close()
        reopened = Service(size=20, data_dir=tmp_path, checkpoint_every=30)
        assert encode_result(reopened.summary("k")) == expected
        assert reopened.range_agg("k", 1, 60) == service.range_agg("k", 1, 60)

    def test_prebuilt_store_excludes_durability_keywords(self, tmp_path):
        store = SessionStore(size=10)
        with pytest.raises(ServiceError, match="prebuilt"):
            Service(store=store, data_dir=tmp_path)


# ----------------------------------------------------------------------
# Randomized crash points
# ----------------------------------------------------------------------
class TestRandomizedCrashPoints:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_after_any_push_recovers_bit_identical(
        self, tmp_path, backend
    ):
        policy = ExecutionPolicy(backend=backend)
        segments = stream(60, seed=13)
        chunks = chunked(segments, 6)
        rng = random.Random(14)
        for crash_after in rng.sample(range(1, len(chunks) + 1), 4):
            data_dir = tmp_path / f"{backend}-{crash_after}"
            live = SessionStore(
                size=14, policy=policy, data_dir=data_dir,
                checkpoint_every=20,
            )
            for chunk in chunks[:crash_after]:
                live.push("k", chunk)
            recovered = SessionStore(
                size=14, policy=policy, data_dir=data_dir,
                checkpoint_every=20,
            )
            assert encode_result(recovered.snapshot("k")) == encode_result(
                live.snapshot("k")
            ), f"divergence at crash point {crash_after}"

    @pytest.mark.slow
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exhaustive_crash_sweep(self, tmp_path, backend):
        policy = ExecutionPolicy(backend=backend)
        segments = stream(90, seed=15, groups=2)
        chunks = chunked(segments, 5)
        for crash_after in range(1, len(chunks) + 1):
            data_dir = tmp_path / f"{backend}-{crash_after}"
            live = SessionStore(
                size=18, policy=policy, data_dir=data_dir,
                checkpoint_every=35,
            )
            for chunk in chunks[:crash_after]:
                live.push("k", chunk)
            recovered = SessionStore(
                size=18, policy=policy, data_dir=data_dir,
                checkpoint_every=35,
            )
            assert encode_result(recovered.snapshot("k")) == encode_result(
                live.snapshot("k")
            ), f"divergence at crash point {crash_after}"
            ours, theirs = QueryEngine(live), QueryEngine(recovered)
            assert ours.window("k", 1, 200, 25, group=("g0",)) == \
                theirs.window("k", 1, 200, 25, group=("g0",))


# ----------------------------------------------------------------------
# Replay entry points
# ----------------------------------------------------------------------
class TestReplay:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_compressor_replay_matches_live_pushes(self, backend):
        policy = ExecutionPolicy(backend=backend)
        chunks = chunked(stream(70, seed=16), 7)
        live = Compressor(SizeBudget(16), policy=policy)
        for chunk in chunks:
            live.push(chunk)
        replayed = Compressor(SizeBudget(16), policy=policy)
        replayed.replay(chunks)
        assert replayed.generation == live.generation
        assert encode_result(replayed.summary()) == encode_result(
            live.summary()
        )
        assert encode_result(replayed.finalize()) == encode_result(
            live.finalize()
        )

    def test_replay_on_finalized_session_raises(self):
        session = Compressor(SizeBudget(8))
        session.finalize()
        with pytest.raises(RuntimeError, match="replay"):
            session.replay([stream(3, seed=17)])


# ----------------------------------------------------------------------
# Durability manager internals
# ----------------------------------------------------------------------
class TestDurabilityManager:
    def test_recover_skips_foreign_files(self, tmp_path):
        (tmp_path / "README").write_text("not a key dir")
        key_dir = tmp_path / encode_key("k")
        key_dir.mkdir()
        (key_dir / "notes.txt").write_text("ignored")
        assert Durability(tmp_path).recover() == []

    def test_negative_fsync_cadence_rejected(self, tmp_path):
        with pytest.raises(DurabilityError, match="fsync_every"):
            Durability(tmp_path, fsync_every=-2)

    def test_checkpoint_magic_is_distinct_from_wire(self):
        assert CHECKPOINT_MAGIC == b"PTAC"
        assert WAL_MAGIC == b"PTAW"
