"""The decorrelated-jitter backoff ladder (`repro.util.backoff`)."""

from __future__ import annotations

import random

import pytest

from repro.util.backoff import Backoff, DEFAULT_CAP_S


class TestLadder:
    def test_first_delay_is_exactly_base(self):
        assert Backoff(0.05).next() == 0.05
        assert Backoff(1.5, cap=2.0).next() == 1.5

    def test_delays_stay_within_the_decorrelated_envelope(self):
        ladder = Backoff(0.05, cap=2.0, rng=random.Random(11))
        previous = ladder.next()
        for _ in range(50):
            delay = ladder.next()
            assert 0.05 <= delay <= min(2.0, 3.0 * previous)
            previous = delay

    def test_cap_bounds_every_delay(self):
        ladder = Backoff(0.5, cap=0.75, rng=random.Random(3))
        assert all(delay <= 0.75 for delay in ladder.delays(100))

    def test_expected_growth_is_geometric_until_the_cap(self):
        # Averaged over many seeded ladders the third delay should be
        # clearly larger than the first: the ladder escalates, a linear
        # one with the same base would still be at 3 * base = 0.003.
        thirds = []
        for seed in range(200):
            ladder = Backoff(0.001, cap=10.0, rng=random.Random(seed))
            delays = list(ladder.delays(5))
            thirds.append(delays[4])
        assert sum(thirds) / len(thirds) > 0.003

    def test_zero_base_never_sleeps(self):
        ladder = Backoff(0.0, rng=random.Random(1))
        assert list(ladder.delays(10)) == [0.0] * 10

    def test_seeded_ladders_are_reproducible(self):
        a = Backoff(0.05, rng=random.Random(42))
        b = Backoff(0.05, rng=random.Random(42))
        assert list(a.delays(20)) == list(b.delays(20))

    def test_reset_restarts_from_base(self):
        ladder = Backoff(0.05, rng=random.Random(5))
        list(ladder.delays(7))
        ladder.reset()
        assert ladder.next() == 0.05

    def test_base_above_default_cap_is_clamped_not_rejected(self):
        # Call sites pass max(cap, base); the class itself requires it.
        with pytest.raises(ValueError, match="cap"):
            Backoff(DEFAULT_CAP_S + 1.0)

    def test_negative_base_is_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Backoff(-0.1)
