"""Unit tests for GMS, gPTAc and gPTAε (Section 6)."""

import math
import random

import pytest

from repro.core import (
    DELTA_INFINITY,
    cmin,
    gms_reduce_to_error,
    gms_reduce_to_size,
    greedy_reduce_to_error,
    greedy_reduce_to_size,
    max_error,
    reduce_to_size,
    sse_between,
)
from conftest import make_segment


def random_segments(count, seed, groups=1, gap_probability=0.0, dimensions=1):
    rng = random.Random(seed)
    segments = []
    for group_index in range(groups):
        position = 1
        for _ in range(count // groups):
            if rng.random() < gap_probability:
                position += rng.randint(1, 3)
            length = rng.randint(1, 3)
            values = tuple(rng.uniform(0, 100) for _ in range(dimensions))
            segments.append(
                make_segment(position, position + length - 1, values[0],
                             group=(f"g{group_index}",))
                if dimensions == 1
                else None
            )
            if dimensions != 1:
                from repro.core import AggregateSegment
                from repro import Interval
                segments[-1] = AggregateSegment(
                    (f"g{group_index}",), values,
                    Interval(position, position + length - 1),
                )
            position += length
    return segments


class TestGMS:
    def test_running_example_error(self, proj_segments):
        """Example 17: greedy reduction to 4 tuples introduces 63 000."""
        result = gms_reduce_to_size(proj_segments, 4)
        assert result.size == 4
        assert result.error == pytest.approx(63000.0, abs=1)

    def test_error_ratio_of_running_example(self, proj_segments):
        greedy = gms_reduce_to_size(proj_segments, 4)
        optimal = reduce_to_size(proj_segments, 4)
        assert greedy.error / optimal.error == pytest.approx(1.28, abs=0.01)

    def test_error_equals_sse_between(self, proj_segments):
        result = gms_reduce_to_size(proj_segments, 4)
        assert result.error == pytest.approx(
            sse_between(proj_segments, result.segments)
        )

    def test_stops_at_cmin(self, proj_segments):
        result = gms_reduce_to_size(proj_segments, 1)
        assert result.size == cmin(proj_segments)

    def test_never_better_than_optimal(self):
        for seed in range(5):
            segments = random_segments(40, seed)
            greedy = gms_reduce_to_size(segments, 10)
            optimal = reduce_to_size(segments, 10)
            assert greedy.error >= optimal.error - 1e-9

    def test_error_bounded_respects_threshold(self, proj_segments):
        for epsilon in (0.0, 0.05, 0.3, 1.0):
            result = gms_reduce_to_error(proj_segments, epsilon)
            assert result.error <= epsilon * max_error(proj_segments) + 1e-6

    def test_error_bounded_epsilon_one_reaches_cmin(self, proj_segments):
        result = gms_reduce_to_error(proj_segments, 1.0)
        assert result.size == cmin(proj_segments)

    def test_invalid_bounds_rejected(self, proj_segments):
        with pytest.raises(ValueError):
            gms_reduce_to_size(proj_segments, 0)
        with pytest.raises(ValueError):
            gms_reduce_to_error(proj_segments, 1.2)


class TestGPTAcSize:
    def test_matches_gms_with_infinite_delta(self):
        for seed in range(4):
            segments = random_segments(60, seed, groups=3, gap_probability=0.2)
            gms = gms_reduce_to_size(segments, 12)
            online = greedy_reduce_to_size(iter(segments), 12,
                                           delta=DELTA_INFINITY)
            assert online.error == pytest.approx(gms.error)
            assert online.segments == gms.segments

    def test_running_example_heap_stays_small(self, proj_segments):
        """Example 21: with c = 3 and δ = 1 the heap never exceeds 5 nodes."""
        result = greedy_reduce_to_size(iter(proj_segments), 3, delta=1)
        assert result.size == 3
        assert result.max_heap_size == 5

    def test_delta_zero_keeps_heap_at_bound_plus_one(self):
        segments = random_segments(200, 2)
        result = greedy_reduce_to_size(iter(segments), 20, delta=0)
        assert result.max_heap_size <= 21

    def test_delta_controls_heap_size_monotonically(self):
        segments = random_segments(300, 9)
        sizes = [
            greedy_reduce_to_size(iter(segments), 30, delta=delta).max_heap_size
            for delta in (0, 1, 2, DELTA_INFINITY)
        ]
        assert sizes == sorted(sizes)
        assert sizes[-1] == len(segments)

    def test_quality_close_to_gms_with_small_delta(self):
        segments = random_segments(300, 4)
        gms = gms_reduce_to_size(segments, 30)
        online = greedy_reduce_to_size(iter(segments), 30, delta=1)
        assert online.error <= gms.error * 1.35 + 1e-9

    def test_result_size_respects_bound(self):
        segments = random_segments(150, 5, groups=5, gap_probability=0.1)
        result = greedy_reduce_to_size(iter(segments), 25, delta=1)
        assert cmin(segments) <= result.size <= max(25, cmin(segments))

    def test_consumes_a_generator_lazily(self, proj_segments):
        consumed = []

        def stream():
            for segment in proj_segments:
                consumed.append(segment)
                yield segment

        result = greedy_reduce_to_size(stream(), 3, delta=1)
        assert len(consumed) == len(proj_segments)
        assert result.input_size == len(proj_segments)

    def test_invalid_parameters_rejected(self, proj_segments):
        with pytest.raises(ValueError):
            greedy_reduce_to_size(iter(proj_segments), 0)
        with pytest.raises(ValueError):
            greedy_reduce_to_size(iter(proj_segments), 3, delta=-1)
        with pytest.raises(ValueError):
            greedy_reduce_to_size(iter(proj_segments), 3, delta=1.5)

    def test_empty_stream(self):
        result = greedy_reduce_to_size(iter([]), 5)
        assert result.segments == []
        assert result.error == 0.0

    def test_multidimensional_stream(self):
        segments = random_segments(80, 6, dimensions=4)
        result = greedy_reduce_to_size(iter(segments), 10, delta=1)
        assert result.size == 10
        assert result.error == pytest.approx(
            sse_between(segments, result.segments)
        )


class TestGPTAepsilonError:
    def test_matches_gms_with_infinite_delta_and_safe_estimates(self):
        for seed in range(3):
            segments = random_segments(80, seed, groups=2, gap_probability=0.15)
            emax = max_error(segments)
            gms = gms_reduce_to_error(segments, 0.4)
            online = greedy_reduce_to_error(
                iter(segments), 0.4, delta=DELTA_INFINITY,
                input_size_estimate=len(segments),
                max_error_estimate=emax,
            )
            assert online.error == pytest.approx(gms.error)
            assert online.segments == gms.segments

    def test_threshold_respected_for_all_epsilon(self):
        segments = random_segments(120, 8, groups=4, gap_probability=0.1)
        emax = max_error(segments)
        for epsilon in (0.0, 0.1, 0.5, 1.0):
            result = greedy_reduce_to_error(
                iter(segments), epsilon, delta=1,
                input_size_estimate=len(segments),
                max_error_estimate=emax,
            )
            assert result.error <= epsilon * emax + 1e-6

    def test_underestimating_emax_is_safe(self):
        segments = random_segments(120, 10)
        emax = max_error(segments)
        precise = greedy_reduce_to_error(
            iter(segments), 0.3, delta=DELTA_INFINITY,
            input_size_estimate=len(segments), max_error_estimate=emax,
        )
        lowball = greedy_reduce_to_error(
            iter(segments), 0.3, delta=DELTA_INFINITY,
            input_size_estimate=len(segments), max_error_estimate=emax / 100.0,
        )
        assert lowball.error == pytest.approx(precise.error)
        assert lowball.max_heap_size >= precise.max_heap_size

    def test_no_estimates_disables_early_merging(self):
        segments = random_segments(100, 12)
        result = greedy_reduce_to_error(iter(segments), 0.5, delta=1)
        assert result.max_heap_size == len(segments)
        assert result.error <= 0.5 * max_error(segments) + 1e-6

    def test_epsilon_zero_merges_only_lossless_pairs(self):
        segments = [make_segment(i, i, 5.0) for i in range(1, 8)]
        result = greedy_reduce_to_error(
            iter(segments), 0.0,
            input_size_estimate=len(segments), max_error_estimate=0.0,
        )
        assert result.size == 1
        assert result.error == 0.0

    def test_invalid_epsilon_rejected(self, proj_segments):
        with pytest.raises(ValueError):
            greedy_reduce_to_error(iter(proj_segments), -0.5)


class TestTheorem1Bound:
    def test_error_ratio_within_logarithmic_bound(self):
        """The greedy/optimal error ratio stays modest (Theorem 1)."""
        for seed in range(4):
            segments = random_segments(120, seed + 20)
            optimal = reduce_to_size(segments, 15)
            greedy = gms_reduce_to_size(segments, 15)
            if optimal.error == 0:
                assert greedy.error == pytest.approx(0.0)
                continue
            ratio = greedy.error / optimal.error
            assert ratio < math.log2(len(segments))
