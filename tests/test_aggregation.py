"""Unit tests for the aggregation substrate: functions, ITA, STA, MWTA."""

import pytest

from repro import Interval, TemporalRelation, ita, iter_ita, mwta, sta
from repro.aggregation import (
    AggregateSpec,
    UnknownAggregateError,
    normalize_aggregates,
    register_aggregate,
    regular_spans,
    resolve_aggregate,
)


class TestAggregateFunctions:
    def test_builtin_functions(self):
        assert resolve_aggregate("avg")([2, 4]) == 3
        assert resolve_aggregate("sum")([2, 4]) == 6
        assert resolve_aggregate("min")([2, 4]) == 2
        assert resolve_aggregate("max")([2, 4]) == 4
        assert resolve_aggregate("count")([2, 4]) == 2

    def test_case_insensitive_lookup(self):
        assert resolve_aggregate("AVG")([1, 3]) == 2

    def test_unknown_function_raises(self):
        with pytest.raises(UnknownAggregateError):
            resolve_aggregate("median_of_medians")

    def test_register_custom_aggregate(self):
        register_aggregate("range_", lambda values: max(values) - min(values))
        spec = AggregateSpec("spread", "range_", "x")
        assert spec.evaluate([2, 9, 4]) == 7

    def test_spec_requires_attribute_except_count(self):
        AggregateSpec("n", "count", None)
        with pytest.raises(ValueError):
            AggregateSpec("a", "avg", None)

    def test_normalize_mapping_form(self):
        specs = normalize_aggregates({"m": ("max", "x"), "n": ("count", None)})
        assert [spec.output for spec in specs] == ["m", "n"]

    def test_normalize_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            normalize_aggregates({})
        with pytest.raises(ValueError):
            normalize_aggregates(
                [AggregateSpec("x", "avg", "a"), AggregateSpec("x", "sum", "a")]
            )

    def test_normalize_rejects_wrong_types(self):
        with pytest.raises(TypeError):
            normalize_aggregates([("avg", "a")])


class TestITA:
    def test_running_example(self, proj_ita):
        rows = [
            (row["proj"], row["avg_sal"], row.interval)
            for row in proj_ita
        ]
        assert rows == [
            ("A", 800.0, Interval(1, 2)),
            ("A", 600.0, Interval(3, 3)),
            ("A", 500.0, Interval(4, 4)),
            ("A", 350.0, Interval(5, 6)),
            ("A", 300.0, Interval(7, 7)),
            ("B", 500.0, Interval(4, 5)),
            ("B", 500.0, Interval(7, 8)),
        ]

    def test_result_is_sequential(self, proj_ita):
        assert proj_ita.is_sequential(["proj"])

    def test_result_size_bound(self, proj_relation, proj_aggregates):
        result = ita(proj_relation, ["proj"], proj_aggregates)
        assert len(result) <= 2 * len(proj_relation) - 1

    def test_no_grouping(self, proj_relation):
        result = ita(proj_relation, [], {"total": ("sum", "sal")})
        # At instant 4 all of r1, r2, r3, r4 hold: 800+400+300+500.
        at_4 = [row for row in result if 4 in row.interval]
        assert len(at_4) == 1
        assert at_4[0]["total"] == 2000.0

    def test_count_aggregate(self, proj_relation):
        result = ita(proj_relation, [], {"n": ("count", None)})
        at_4 = [row for row in result if 4 in row.interval]
        assert at_4[0]["n"] == 4.0

    def test_multiple_aggregates(self, proj_relation):
        result = ita(
            proj_relation, ["proj"],
            {"lo": ("min", "sal"), "hi": ("max", "sal")},
        )
        assert result.schema.columns == ("proj", "lo", "hi")

    def test_gaps_are_preserved(self):
        relation = TemporalRelation.from_records(
            columns=("v",), records=[(1.0, (1, 2)), (5.0, (6, 8))]
        )
        result = ita(relation, [], {"m": ("avg", "v")})
        assert result.intervals() == [Interval(1, 2), Interval(6, 8)]

    def test_iter_ita_matches_batch(self, proj_relation, proj_aggregates):
        streamed = list(iter_ita(proj_relation, ["proj"], proj_aggregates))
        batch = ita(proj_relation, ["proj"], proj_aggregates)
        assert len(streamed) == len(batch)
        for (group, values, interval), row in zip(streamed, batch):
            assert group == (row["proj"],)
            assert values == (row["avg_sal"],)
            assert interval == row.interval

    def test_empty_relation(self):
        relation = TemporalRelation.from_records(columns=("v",), records=[])
        assert len(ita(relation, [], {"m": ("avg", "v")})) == 0

    def test_coalescing_of_equal_aggregates(self):
        relation = TemporalRelation.from_records(
            columns=("v",),
            records=[(3.0, (1, 4)), (3.0, (5, 9))],
        )
        result = ita(relation, [], {"m": ("avg", "v")})
        assert len(result) == 1
        assert result[0].interval == Interval(1, 9)


class TestSTA:
    def test_running_example_trimesters(self, proj_relation, proj_aggregates):
        result = sta(proj_relation, ["proj"], proj_aggregates, span_length=4)
        rows = [(r["proj"], r["avg_sal"], r.interval) for r in result]
        assert rows == [
            ("A", 500.0, Interval(1, 4)),
            ("A", 350.0, Interval(5, 8)),
            ("B", 500.0, Interval(1, 4)),
            ("B", 500.0, Interval(5, 8)),
        ]

    def test_explicit_spans(self, proj_relation, proj_aggregates):
        result = sta(
            proj_relation, ["proj"], proj_aggregates,
            spans=[Interval(1, 8)],
        )
        assert len(result) == 2  # one per project

    def test_spans_without_data_are_skipped(self, proj_relation, proj_aggregates):
        result = sta(
            proj_relation, ["proj"], proj_aggregates,
            spans=[Interval(100, 120)],
        )
        assert len(result) == 0

    def test_requires_exactly_one_span_argument(self, proj_relation, proj_aggregates):
        with pytest.raises(ValueError):
            sta(proj_relation, ["proj"], proj_aggregates)
        with pytest.raises(ValueError):
            sta(proj_relation, ["proj"], proj_aggregates,
                spans=[Interval(1, 4)], span_length=4)

    def test_regular_spans(self):
        spans = regular_spans(Interval(1, 10), 4)
        assert spans == [Interval(1, 4), Interval(5, 8), Interval(9, 10)]

    def test_regular_spans_rejects_bad_length(self):
        with pytest.raises(ValueError):
            regular_spans(Interval(1, 10), 0)


class TestMWTA:
    def test_zero_window_equals_ita(self, proj_relation, proj_aggregates):
        assert mwta(proj_relation, ["proj"], proj_aggregates) == ita(
            proj_relation, ["proj"], proj_aggregates
        )

    def test_window_widens_contribution(self):
        relation = TemporalRelation.from_records(
            columns=("v",), records=[(10.0, (5, 5))]
        )
        result = mwta(relation, [], {"m": ("avg", "v")},
                      window_before=2, window_after=1)
        # The tuple is visible from instants 4 (window reaches forward to 5)
        # through 7 (window reaches back to 5).
        assert result.intervals() == [Interval(4, 7)]

    def test_negative_window_rejected(self, proj_relation, proj_aggregates):
        with pytest.raises(ValueError):
            mwta(proj_relation, ["proj"], proj_aggregates, window_before=-1)

    def test_window_smooths_values(self):
        relation = TemporalRelation.from_records(
            columns=("v",), records=[(0.0, (1, 4)), (10.0, (5, 8))]
        )
        plain = ita(relation, [], {"m": ("avg", "v")})
        smoothed = mwta(relation, [], {"m": ("avg", "v")},
                        window_before=1, window_after=1)
        assert len(plain) == 2
        assert len(smoothed) == 3  # a blended segment appears at the boundary
