"""The metrics registry: thread safety, buckets, exposition, arming.

Everything here drives :mod:`repro.obs.metrics` directly — a fresh
:class:`MetricsRegistry` per test where possible, the process-global
``REGISTRY`` only where the free functions are under test (with
delta-style assertions so other suites' registrations don't interfere).
"""

from __future__ import annotations

import math
import re
import threading

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)


class TestPrimitives:
    def test_counter_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(MetricError):
            counter.inc(-1)
        assert counter.value == 3.5

    def test_gauge_up_and_down(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(7)
        assert gauge.value == 8.0

    def test_latency_buckets_shape(self):
        # Half-decade log steps, 1 µs .. 10 s, strictly increasing.
        assert len(LATENCY_BUCKETS) == 15
        assert LATENCY_BUCKETS[0] == pytest.approx(1e-6)
        assert LATENCY_BUCKETS[-1] == pytest.approx(10.0)
        assert all(
            b2 > b1 for b1, b2 in zip(LATENCY_BUCKETS, LATENCY_BUCKETS[1:])
        )

    def test_histogram_edges_are_inclusive(self):
        histogram = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 100.0):
            histogram.observe(value)
        # le semantics: an observation equal to an edge counts into that
        # bucket; 100.0 lands in the implicit +Inf overflow bucket.
        assert histogram.cumulative() == [
            (1.0, 2),
            (2.0, 4),
            (4.0, 5),
            (float("inf"), 6),
        ]
        assert histogram.count == 6
        assert histogram.sum == pytest.approx(109.0)

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(MetricError):
            Histogram(buckets=())
        with pytest.raises(MetricError):
            Histogram(buckets=(1.0, 1.0, 2.0))
        with pytest.raises(MetricError):
            Histogram(buckets=(2.0, 1.0))


class TestRegistry:
    def test_idempotent_registration(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_t_total", "help", store="0")
        b = registry.counter("repro_t_total", "ignored on re-register", store="0")
        c = registry.counter("repro_t_total", "help", store="1")
        assert a is b
        assert a is not c
        a.inc()
        assert registry.value("repro_t_total", store="0") == 1.0
        assert registry.value("repro_t_total", store="1") == 0.0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total")
        with pytest.raises(MetricError):
            registry.gauge("repro_t_total")
        registry.histogram("repro_t_seconds")
        with pytest.raises(MetricError):
            registry.histogram("repro_t_seconds", buckets=(1.0, 2.0))

    def test_label_name_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total", "", store="0")
        with pytest.raises(MetricError):
            registry.counter("repro_t_total", "", engine="0")

    def test_invalid_names_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("0bad")
        with pytest.raises(MetricError):
            registry.counter("repro_ok_total", **{"0bad": "x"})
        with pytest.raises(MetricError):
            registry.counter("repro_ok_total", __reserved="x")

    def test_thread_safety_exact_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_racy_total")
        histogram = registry.histogram("repro_racy_seconds", buckets=(1.0,))
        threads = 8
        per_thread = 2000
        barrier = threading.Barrier(threads)

        def hammer() -> None:
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()
                histogram.observe(0.5)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert counter.value == threads * per_thread
        assert histogram.count == threads * per_thread
        assert histogram.cumulative()[0][1] == threads * per_thread

    def test_reset_drops_families(self):
        registry = MetricsRegistry()
        registry.counter("repro_gone_total").inc()
        registry.reset()
        assert registry.render() == ""
        assert registry.value("repro_gone_total") == 0.0


class TestExposition:
    def test_render_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "A thing.", kind="x").inc(3)
        registry.gauge("repro_b", "B level.").set(2.5)
        text = registry.render()
        assert "# HELP repro_a_total A thing.\n" in text
        assert "# TYPE repro_a_total counter\n" in text
        assert 'repro_a_total{kind="x"} 3\n' in text
        assert "# TYPE repro_b gauge\n" in text
        assert "repro_b 2.5\n" in text
        assert text.endswith("\n")

    def test_render_histogram_series(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_h_seconds", "H.", buckets=(0.1, 1.0), stage="s"
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = registry.render()
        assert 'repro_h_seconds_bucket{stage="s",le="0.1"} 1\n' in text
        assert 'repro_h_seconds_bucket{stage="s",le="1"} 2\n' in text
        assert 'repro_h_seconds_bucket{stage="s",le="+Inf"} 3\n' in text
        assert 'repro_h_seconds_count{stage="s"} 3\n' in text
        assert re.search(r'repro_h_seconds_sum\{stage="s"\} 5\.55', text)

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_esc_total", "", path='we"ird\\thing\nnewline'
        ).inc()
        text = registry.render()
        assert (
            'repro_esc_total{path="we\\"ird\\\\thing\\nnewline"} 1' in text
        )

    def test_every_line_parses(self):
        """Every non-comment line is `name{labels} value` — the same
        check the CI service smoke applies to a live /metrics scrape."""
        registry = MetricsRegistry()
        registry.counter("repro_p_total", "Help.", code="bad_request").inc()
        registry.histogram("repro_p_seconds", "Help.").observe(0.01)
        registry.gauge("repro_p_level").set(-1.5)
        line_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$"
        )
        for line in registry.render().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            assert line_re.match(line), line
            sample_value = line.rsplit(" ", 1)[1]
            if sample_value not in ("+Inf", "-Inf", "NaN"):
                float(sample_value)

    def test_snapshot_is_jsonable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("repro_s_total", "S.", kind="x").inc(2)
        registry.histogram("repro_s_seconds", buckets=(1.0,)).observe(3.0)
        snap = json.loads(json.dumps(registry.snapshot()))
        assert snap["repro_s_total"]["type"] == "counter"
        assert snap["repro_s_total"]["samples"][0] == {
            "labels": {"kind": "x"},
            "value": 2,
        }
        histo = snap["repro_s_seconds"]["samples"][0]
        assert histo["count"] == 1
        assert histo["buckets"] == {"1": 0, "+Inf": 1}


class TestArming:
    def test_set_enabled_roundtrip(self):
        previous = metrics.set_enabled(False)
        try:
            assert metrics.enabled() is False
            metrics.set_enabled(True)
            assert metrics.enabled() is True
        finally:
            metrics.set_enabled(previous)

    def test_disabled_context_restores(self):
        previous = metrics.set_enabled(True)
        try:
            with metrics.disabled():
                assert not metrics.enabled()
                with metrics.disabled():
                    assert not metrics.enabled()
                assert not metrics.enabled()
            assert metrics.enabled()
        finally:
            metrics.set_enabled(previous)

    def test_global_free_functions_share_registry(self):
        before = metrics.value("repro_free_fn_total", test="global")
        metrics.counter("repro_free_fn_total", "Free fn.", test="global").inc()
        after = metrics.value("repro_free_fn_total", test="global")
        assert after == before + 1
        assert "repro_free_fn_total" in metrics.render()
        assert not math.isnan(after)
