"""Tests for the push-based incremental Compressor session (repro.api).

The central contract (ISSUE 3 acceptance criterion): after pushing any
prefix of a stream, ``Compressor.summary()`` is **bit-identical** — same
intervals, same exact float values, same error/size/merge counters — to
running batch :func:`repro.compress` over that prefix with the same
parameters, on both heap backends.  ``summary()`` must also be
non-destructive: the session keeps running and later snapshots are
unaffected by earlier ones.
"""

from __future__ import annotations

import math
import random

import pytest

from repro import Interval, compress
from repro.api import (
    Compressor,
    ErrorBudget,
    ExecutionPolicy,
    PlanError,
    Result,
    SizeBudget,
)
from repro.core import AggregateSegment, max_error

BACKENDS = ["python", "numpy"]


def random_stream(
    count: int,
    seed: int,
    gap_probability: float = 0.15,
    groups: int = 1,
    dimensions: int = 1,
) -> list[AggregateSegment]:
    """A randomized segment stream with gaps and optional groups.

    Gaps and group changes exercise the online algorithms' gap bookkeeping
    (``last_gap_id`` / before-gap / after-gap counts), which is where a
    resumable state machine could silently diverge from the batch loops.
    """
    rng = random.Random(seed)
    stream: list[AggregateSegment] = []
    per_group = count // groups
    for g in range(groups):
        group = (f"g{g}",) if groups > 1 else ()
        time = rng.randrange(0, 5)
        for _ in range(per_group):
            length = rng.randrange(1, 4)
            values = tuple(rng.uniform(0.0, 100.0) for _ in range(dimensions))
            stream.append(
                AggregateSegment(group, values, Interval(time, time + length - 1))
            )
            time += length
            if rng.random() < gap_probability:
                time += rng.randrange(1, 4)  # temporal gap
    return stream


def assert_bit_identical(snapshot: Result, reference: Result) -> None:
    assert snapshot.size == reference.size
    assert snapshot.input_size == reference.input_size
    assert snapshot.merges == reference.merges
    assert snapshot.max_heap_size == reference.max_heap_size
    assert snapshot.error == reference.error  # exact float equality
    for left, right in zip(snapshot.segments, reference.segments):
        assert left.group == right.group
        assert left.interval == right.interval
        assert left.values == right.values  # exact float equality


# ----------------------------------------------------------------------
# Prefix parity with batch compress
# ----------------------------------------------------------------------
class TestPrefixParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_size_bounded_every_prefix(self, backend):
        stream = random_stream(80, seed=1)
        session = Compressor(
            SizeBudget(12), policy=ExecutionPolicy(backend=backend)
        )
        for length, segment in enumerate(stream, start=1):
            session.push(segment)
            snapshot = session.summary()
            reference = compress(stream[:length], size=12, backend=backend)
            assert_bit_identical(snapshot, reference)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_size_bounded_grouped_stream(self, backend):
        stream = random_stream(90, seed=2, groups=3, dimensions=2)
        session = Compressor(
            size=15, policy=ExecutionPolicy(backend=backend)
        )
        for length, segment in enumerate(stream, start=1):
            session.push(segment)
            if length % 7 and length != len(stream):
                continue  # snapshot on a sparse prefix grid + at the end
            assert_bit_identical(
                session.summary(),
                compress(stream[:length], size=15, backend=backend),
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_error_bounded_with_estimates_every_prefix(self, backend):
        stream = random_stream(70, seed=3)
        estimates = dict(
            input_size_estimate=len(stream),
            max_error_estimate=max_error(stream),
        )
        session = Compressor(
            ErrorBudget(0.3),
            policy=ExecutionPolicy(backend=backend, **estimates),
        )
        for length, segment in enumerate(stream, start=1):
            session.push(segment)
            reference = compress(
                iter(stream[:length]), max_error=0.3, backend=backend,
                **estimates,
            )
            assert_bit_identical(session.summary(), reference)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_error_bounded_without_estimates(self, backend):
        # No estimates: early merging is disabled in both the session and
        # the batch run (generator input keeps compress estimate-free).
        stream = random_stream(60, seed=4)
        session = Compressor(
            max_error=0.5, policy=ExecutionPolicy(backend=backend)
        )
        for length, segment in enumerate(stream, start=1):
            session.push(segment)
            if length % 9 and length != len(stream):
                continue
            reference = compress(
                iter(stream[:length]), max_error=0.5, backend=backend
            )
            assert_bit_identical(session.summary(), reference)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delta_infinity_matches_batch(self, backend):
        stream = random_stream(50, seed=5)
        policy = ExecutionPolicy(backend=backend, delta=math.inf)
        session = Compressor(SizeBudget(8), policy=policy)
        for length, segment in enumerate(stream, start=1):
            session.push(segment)
        assert_bit_identical(
            session.summary(),
            compress(stream, size=8, backend=backend, delta=math.inf),
        )


# ----------------------------------------------------------------------
# Session mechanics
# ----------------------------------------------------------------------
class TestSessionMechanics:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chunk_push_equals_single_push(self, backend):
        stream = random_stream(64, seed=6, groups=2)
        singles = Compressor(size=10, policy=ExecutionPolicy(backend=backend))
        chunked = Compressor(size=10, policy=ExecutionPolicy(backend=backend))
        for segment in stream:
            singles.push(segment)
        for start in range(0, len(stream), 13):
            chunked.push(stream[start : start + 13])
        assert_bit_identical(singles.summary(), chunked.summary())

    def test_push_accepts_generators(self):
        stream = random_stream(20, seed=7)
        session = Compressor(size=5)
        session.push(iter(stream))
        assert session.pushed == 20

    def test_summary_is_non_destructive(self):
        stream = random_stream(40, seed=8)
        session = Compressor(size=6)
        session.push(stream[:25])
        first = session.summary()
        second = session.summary()
        assert_bit_identical(first, second)
        # The live state keeps accepting tuples after a snapshot.
        session.push(stream[25:])
        assert_bit_identical(session.summary(), compress(stream, size=6))

    def test_finalize_matches_last_summary_and_closes(self):
        stream = random_stream(30, seed=9)
        session = Compressor(size=7)
        session.push(stream)
        snapshot = session.summary()
        final = session.finalize()
        assert_bit_identical(final, snapshot)
        assert session.finalized
        assert session.summary() is final  # cached, still readable
        assert session.finalize() is final  # idempotent
        with pytest.raises(RuntimeError, match="finalized"):
            session.push(stream[0])

    def test_introspection_and_context_manager(self):
        stream = random_stream(25, seed=10)
        with Compressor(size=5) as session:
            session.push(stream)
            assert session.pushed == 25
            assert len(session) == session.heap_size <= 25
            assert not session.finalized
        # A cleanly exited block finalizes the session.
        assert session.finalized
        assert_bit_identical(session.summary(), compress(stream, size=5))

    def test_context_manager_leaves_state_open_on_error(self):
        stream = random_stream(10, seed=12)
        with pytest.raises(RuntimeError, match="boom"):
            with Compressor(size=5) as session:
                session.push(stream)
                raise RuntimeError("boom")
        assert not session.finalized  # partial state kept for inspection

    def test_result_sinks(self, tmp_path):
        stream = random_stream(30, seed=11)
        session = Compressor(size=5)
        session.push(stream)
        result = session.finalize()
        assert len(list(result)) == len(result) == result.size
        relation = result.to_relation(value_columns=["reading"])
        assert relation.schema.columns == ("reading",)
        written = result.to_csv(tmp_path / "summary.csv")
        assert written.exists()
        assert "reading" not in written.read_text()  # default names v1..vp


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
class TestSessionValidation:
    def test_requires_exactly_one_budget(self):
        with pytest.raises(PlanError, match="exactly one"):
            Compressor()
        with pytest.raises(PlanError, match="exactly one"):
            Compressor(size=3, max_error=0.5)
        with pytest.raises(PlanError, match="exactly one"):
            Compressor(SizeBudget(3), max_error=0.5)

    def test_rejects_invalid_bounds(self):
        with pytest.raises(PlanError, match="size"):
            Compressor(size=0)
        with pytest.raises(PlanError, match="epsilon"):
            Compressor(max_error=1.5)

    def test_rejects_workers_policy(self):
        with pytest.raises(PlanError, match="single-process"):
            Compressor(size=3, policy=ExecutionPolicy(workers=2))
