"""Shared fixtures: the paper's running example and small helper builders."""

from __future__ import annotations

import pytest

from repro import Interval, TemporalRelation, ita
from repro.core import AggregateSegment, segments_from_relation
from repro.util.health import SHARED as SHARED_HEALTH


@pytest.fixture(autouse=True)
def _fresh_peer_health():
    """Reset the process-wide circuit breakers around every test.

    The cluster transport and the replication links share one
    :data:`repro.util.health.SHARED` tracker; without a reset, a test
    that hammers a dead address (``127.0.0.1:1``) would trip its breaker
    for every later test and silently change their retry behavior.
    """
    SHARED_HEALTH.reset()
    yield
    SHARED_HEALTH.reset()


@pytest.fixture
def proj_relation() -> TemporalRelation:
    """The ``proj`` relation of Fig. 1(a)."""
    return TemporalRelation.from_records(
        columns=("empl", "proj", "sal"),
        records=[
            ("John", "A", 800, Interval(1, 4)),
            ("Ann", "A", 400, Interval(3, 6)),
            ("Tom", "A", 300, Interval(4, 7)),
            ("John", "B", 500, Interval(4, 5)),
            ("John", "B", 500, Interval(7, 8)),
        ],
    )


@pytest.fixture
def proj_aggregates() -> dict:
    """The aggregate specification of the running example query."""
    return {"avg_sal": ("avg", "sal")}


@pytest.fixture
def proj_ita(proj_relation, proj_aggregates) -> TemporalRelation:
    """The ITA result of Fig. 1(c)."""
    return ita(proj_relation, ["proj"], proj_aggregates)


@pytest.fixture
def proj_segments(proj_ita) -> list:
    """The ITA result of Fig. 1(c) as a sorted segment list (s1 ... s7)."""
    return segments_from_relation(proj_ita, ["proj"], ["avg_sal"])


def make_segment(start, end, value, group=()):
    """Build a 1-D segment quickly in tests."""
    return AggregateSegment(group, (float(value),), Interval(start, end))


@pytest.fixture
def make_seg():
    """Expose :func:`make_segment` as a fixture-friendly callable."""
    return make_segment
