"""Every invalid knob combination fails identically through all three doors.

Satellite task of ISSUE 3: the ad-hoc checks formerly duplicated across
``pta`` and ``compress`` now live in :mod:`repro.api.plan`, so the same
mistake raises the *same exception type* (:class:`repro.api.PlanError`, a
:class:`ValueError` subclass) with the *same message* whether it enters
through ``pta``, ``compress`` or the declarative ``Plan`` API.
"""

from __future__ import annotations

import pytest

from repro import Interval, TemporalRelation, compress, pta
from repro.api import ExecutionPolicy, Plan, PlanError
from repro.core import AggregateSegment
from repro.datasets import synthetic_sequential_segments

AGGS = {"avg_sal": ("avg", "sal")}


def relation() -> TemporalRelation:
    return TemporalRelation.from_records(
        columns=("empl", "proj", "sal"),
        records=[
            ("John", "A", 800, Interval(1, 4)),
            ("Ann", "A", 400, Interval(3, 6)),
        ],
    )


def segments() -> list[AggregateSegment]:
    return synthetic_sequential_segments(10, dimensions=1, seed=1)


# Each entry: (case name, expected message fragment,
#              pta call, compress call, plan call) — every call must raise
# PlanError with the same message.
INVALID_CASES = [
    (
        "no-budget",
        "provide exactly one of 'size' and 'max_error'",
        lambda: pta(relation(), ["proj"], AGGS),
        lambda: compress(segments()),
        lambda: Plan(segments()).reduce(),
    ),
    (
        "both-budgets",
        "provide exactly one of 'size' and 'max_error'",
        lambda: pta(relation(), ["proj"], AGGS, size=3, error=0.5),
        lambda: compress(segments(), size=3, max_error=0.5),
        lambda: Plan(segments()).reduce(size=3, max_error=0.5),
    ),
    (
        "bad-method",
        "method must be 'dp' or 'greedy', got 'quantum'",
        lambda: pta(relation(), ["proj"], AGGS, size=3, method="quantum"),
        lambda: compress(segments(), size=3, method="quantum"),
        lambda: Plan(segments()).reduce(size=3, method="quantum"),
    ),
    (
        "workers-with-dp",
        "workers is only supported for method='greedy'",
        lambda: pta(relation(), ["proj"], AGGS, size=3, method="dp", workers=2),
        lambda: compress(segments(), size=3, method="dp", workers=2),
        lambda: Plan(segments())
        .reduce(size=3, method="dp")
        .run(ExecutionPolicy(workers=2)),
    ),
    (
        "group-by-on-stream",
        "segment streams are already aggregated",
        None,  # pta's first argument is a relation by signature
        lambda: compress(segments(), size=3, group_by=["proj"]),
        lambda: Plan(segments()).group_by("proj"),
    ),
    (
        "aggregates-on-stream",
        "segment streams are already aggregated",
        None,
        lambda: compress(segments(), size=3, aggregates=AGGS),
        lambda: Plan(segments()).aggregate(AGGS),
    ),
    (
        "bad-chunk-size",
        "chunk_size must be at least 1, got 0",
        None,  # pta has no chunk_size knob
        lambda: compress(segments(), size=3, chunk_size=0),
        lambda: Plan(segments()).reduce(size=3).run(ExecutionPolicy(chunk_size=0)),
    ),
    (
        "bad-delta",
        "delta must be a non-negative integer or DELTA_INFINITY, got -1",
        lambda: pta(relation(), ["proj"], AGGS, size=3, method="greedy", delta=-1),
        lambda: compress(segments(), size=3, delta=-1),
        lambda: Plan(segments()).reduce(size=3).run(ExecutionPolicy(delta=-1)),
    ),
    (
        "bad-size-bound",
        "size bound must be at least 1, got 0",
        lambda: pta(relation(), ["proj"], AGGS, size=0),
        lambda: compress(segments(), size=0),
        lambda: Plan(segments()).reduce(size=0),
    ),
    (
        "bad-epsilon",
        "epsilon must be within [0, 1], got 1.5",
        lambda: pta(relation(), ["proj"], AGGS, error=1.5),
        lambda: compress(segments(), max_error=1.5),
        lambda: Plan(segments()).reduce(max_error=1.5),
    ),
    (
        "bad-backend",
        "backend must be 'python' or 'numpy', got 'fortran'",
        lambda: pta(relation(), ["proj"], AGGS, size=3, backend="fortran"),
        lambda: compress(segments(), size=3, backend="fortran"),
        lambda: Plan(segments()).reduce(size=3).run(ExecutionPolicy(backend="fortran")),
    ),
    (
        "negative-workers",
        "workers must be non-negative, got -1",
        lambda: pta(relation(), ["proj"], AGGS, size=3, method="greedy", workers=-1),
        lambda: compress(segments(), size=3, workers=-1),
        lambda: Plan(segments()).reduce(size=3).run(ExecutionPolicy(workers=-1)),
    ),
    (
        "bad-shard-size",
        "shard_size must be at least 1, got 0",
        None,  # pta has no shard_size knob
        lambda: compress(segments(), size=3, workers=1, shard_size=0),
        lambda: Plan(segments()).reduce(size=3).run(ExecutionPolicy(shard_size=0)),
    ),
    (
        "error-alias-double-spelling",
        "'error' is a legacy alias of 'max_error'",
        lambda: pta(relation(), ["proj"], AGGS, error=0.5, max_error=0.5),
        lambda: compress(segments(), error=0.5, max_error=0.5),
        None,  # the typed API has no alias to misuse
    ),
]

IDS = [case[0] for case in INVALID_CASES]


@pytest.mark.parametrize("case", INVALID_CASES, ids=IDS)
def test_same_exception_type_and_message_through_every_door(case):
    _, fragment, *doors = case
    exercised = 0
    messages = set()
    for door in doors:
        if door is None:
            continue
        with pytest.raises(PlanError) as info:
            door()
        assert fragment in str(info.value)
        messages.add(str(info.value))
        exercised += 1
    assert exercised >= 2, "each case must cover at least two doors"
    assert len(messages) == 1, f"doors disagree on the message: {messages}"


def test_plan_error_is_a_value_error():
    """Legacy ``except ValueError`` call sites keep catching everything."""
    assert issubclass(PlanError, ValueError)
    with pytest.raises(ValueError):
        compress(segments())
