"""Unit tests for the error measures and the prefix-sum SSE (Proposition 1)."""

import math

import pytest

from repro import Interval
from repro.core import (
    AggregateSegment,
    PrefixSums,
    error_ratio,
    max_error,
    merge,
    normalized_error,
    pairwise_merge_error,
    sse_between,
    sse_of_run,
)
from repro.core.errors import resolve_weights
from conftest import make_segment


class TestWeights:
    def test_default_weights(self):
        assert resolve_weights(None, 3) == (1.0, 1.0, 1.0)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            resolve_weights((1.0,), 2)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            resolve_weights((1.0, 0.0), 2)


class TestSSEOfRun:
    def test_example_5(self, proj_segments):
        # Merging s1=(A,800,[1,2]) and s2=(A,600,[3,3]) introduces 26 666.67.
        error = sse_of_run(proj_segments[0:2])
        assert error == pytest.approx(26666.67, abs=1)

    def test_single_segment_has_zero_error(self, proj_segments):
        assert sse_of_run(proj_segments[0:1]) == 0.0

    def test_empty_run(self):
        assert sse_of_run([]) == 0.0

    def test_constant_run_has_zero_error(self):
        run = [make_segment(i, i, 7.0) for i in range(1, 6)]
        assert sse_of_run(run) == pytest.approx(0.0)

    def test_weights_scale_quadratically(self, proj_segments):
        unweighted = sse_of_run(proj_segments[0:2])
        weighted = sse_of_run(proj_segments[0:2], weights=(2.0,))
        assert weighted == pytest.approx(4.0 * unweighted)

    def test_multidimensional_run(self):
        run = [
            AggregateSegment((), (0.0, 10.0), Interval(1, 1)),
            AggregateSegment((), (2.0, 30.0), Interval(2, 2)),
        ]
        # dimension 1: mean 1, error 2; dimension 2: mean 20, error 200.
        assert sse_of_run(run) == pytest.approx(2.0 + 200.0)


class TestSSEBetween:
    def test_matches_sum_of_run_errors(self, proj_segments):
        reduced = [
            merge(proj_segments[0], proj_segments[1]),
            proj_segments[2],
            merge(proj_segments[3], proj_segments[4]),
            proj_segments[5],
            proj_segments[6],
        ]
        expected = sse_of_run(proj_segments[0:2]) + sse_of_run(proj_segments[3:5])
        assert sse_between(proj_segments, reduced) == pytest.approx(expected)

    def test_identity_reduction_has_zero_error(self, proj_segments):
        assert sse_between(proj_segments, proj_segments) == 0.0

    def test_uncovered_segment_raises(self, proj_segments):
        with pytest.raises(ValueError):
            sse_between(proj_segments, proj_segments[:-1])

    def test_empty_inputs(self):
        assert sse_between([], []) == 0.0


class TestMaxError:
    def test_running_example(self, proj_segments):
        assert max_error(proj_segments) == pytest.approx(269285.714, abs=1)

    def test_zero_when_nothing_mergeable(self):
        segments = [
            make_segment(1, 2, 1.0, group=("A",)),
            make_segment(1, 2, 9.0, group=("B",)),
        ]
        assert max_error(segments) == 0.0


class TestPrefixSums:
    def test_example_12_prefix_values(self, proj_segments):
        prefix = PrefixSums(proj_segments)
        # S = <1600, 2200, 2700, 3400, ...>, SS = <1280000, 1640000, ...>,
        # L = <2, 3, 4, 6, ...> (Example 12).
        assert prefix._sums[0][1:5] == [1600.0, 2200.0, 2700.0, 3400.0]
        assert prefix._square_sums[0][1:3] == [1280000.0, 1640000.0]
        assert prefix._lengths[1:5] == [2.0, 3.0, 4.0, 6.0]

    def test_example_12_merge_error(self, proj_segments):
        prefix = PrefixSums(proj_segments)
        # SSE of merging {s2, s3} is 5 000.
        assert prefix.sse(1, 2) == pytest.approx(5000.0)

    def test_matches_naive_sse_everywhere(self, proj_segments):
        prefix = PrefixSums(proj_segments)
        for first in range(len(proj_segments)):
            for last in range(first, len(proj_segments)):
                run = proj_segments[first : last + 1]
                assert prefix.sse(first, last) == pytest.approx(
                    sse_of_run(run), abs=1e-6
                )

    def test_merged_values_match_merge_operator(self, proj_segments):
        prefix = PrefixSums(proj_segments)
        merged = merge(proj_segments[0], proj_segments[1])
        assert prefix.merged_values(0, 1)[0] == pytest.approx(merged.values[0])

    def test_never_negative(self):
        segments = [make_segment(i, i, 1e9 + i * 1e-4) for i in range(1, 50)]
        prefix = PrefixSums(segments)
        assert prefix.sse(0, len(segments) - 1) >= 0.0


class TestPairwiseMergeError:
    def test_equals_sse_of_pair(self, proj_segments):
        for left, right in zip(proj_segments, proj_segments[1:]):
            if left.group != right.group or not left.interval.meets(right.interval):
                continue
            assert pairwise_merge_error(left, right) == pytest.approx(
                sse_of_run([left, right])
            )

    def test_proposition_2_locality(self, proj_segments):
        """dsim depends only on the two merged tuples (Proposition 2)."""
        s3, s4, s5 = proj_segments[2], proj_segments[3], proj_segments[4]
        merged45 = merge(s4, s5)
        # Additional error of merging s3 with (s4 ⊕ s5) on top of the error
        # already introduced by creating (s4 ⊕ s5).
        total = sse_of_run([s3, s4, s5])
        already = sse_of_run([s4, s5])
        assert pairwise_merge_error(s3, merged45) == pytest.approx(total - already)


class TestRatios:
    def test_normalized_error_range(self, proj_segments):
        reduced = [
            merge(proj_segments[0], proj_segments[1]),
            proj_segments[2],
            merge(proj_segments[3], proj_segments[4]),
            proj_segments[5],
            proj_segments[6],
        ]
        value = normalized_error(proj_segments, reduced)
        assert 0.0 < value < 1.0

    def test_error_ratio_conventions(self):
        assert error_ratio(5.0, 5.0) == 1.0
        assert error_ratio(10.0, 5.0) == 2.0
        assert error_ratio(0.0, 0.0) == 1.0
        assert math.isinf(error_ratio(1.0, 0.0))
