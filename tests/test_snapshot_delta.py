"""Delta-based snapshots versus the clone-and-finalize oracle.

The PR 5 contract: ``Compressor.summary()`` (and the serving layer built on
top of it) is computed by patching a materialised mirror of the live
intermediate relation with the merge delta log and finalizing the mirror —
and the result must be **bit-identical** to the clone-and-finalize oracle
path (``Compressor.summary_oracle()`` / ``OnlineReducer.clone().finalize()``)
on every prefix of randomized streams, on both heap backends, across chunked
and per-tuple pushes, and across the serving layer's eviction/freeze
boundaries.

The randomized prefix sweeps are marked ``slow`` so the CI matrix runs them
on one Python leg only; the edge-case tests stay in the default selection.
"""

from __future__ import annotations

import math
import random

import pytest

from repro import Interval
from repro.api import Compressor, ErrorBudget, ExecutionPolicy, Result, SizeBudget
from repro.core import AggregateSegment, max_error
from repro.core.greedy import OnlineReducer
from repro.core.kernels import SnapshotColumns
from repro.service import QueryEngine, SessionStore

BACKENDS = ["python", "numpy"]


def random_stream(
    count: int,
    seed: int,
    gap_probability: float = 0.15,
    groups: int = 1,
    dimensions: int = 2,
) -> list[AggregateSegment]:
    """Randomized segments with gaps and groups (same shape as test_session)."""
    rng = random.Random(seed)
    stream: list[AggregateSegment] = []
    per_group = count // groups
    for g in range(groups):
        group = (f"g{g}",) if groups > 1 else ()
        time = rng.randrange(0, 5)
        for _ in range(per_group):
            length = rng.randrange(1, 4)
            values = tuple(rng.uniform(0.0, 100.0) for _ in range(dimensions))
            stream.append(
                AggregateSegment(group, values, Interval(time, time + length - 1))
            )
            time += length
            if rng.random() < gap_probability:
                time += rng.randrange(1, 4)
    return stream


def assert_bit_identical(snapshot: Result, reference: Result) -> None:
    assert snapshot.size == reference.size
    assert snapshot.input_size == reference.input_size
    assert snapshot.merges == reference.merges
    assert snapshot.max_heap_size == reference.max_heap_size
    assert snapshot.error == reference.error  # exact float equality
    for left, right in zip(snapshot.segments, reference.segments):
        assert left.group == right.group
        assert left.interval == right.interval
        assert left.values == right.values  # exact float equality


def assert_columns_match(columns: SnapshotColumns, reference: Result) -> None:
    """The column form must carry exactly the reference segments."""
    materialised = columns.segments()
    assert len(materialised) == reference.size
    for left, right in zip(materialised, reference.segments):
        assert left.group == right.group
        assert left.interval == right.interval
        assert left.values == right.values


# ----------------------------------------------------------------------
# Randomized prefix parity (the property suite — one CI leg)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestRandomizedPrefixParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(4))
    def test_size_bounded_every_prefix(self, backend, seed):
        stream = random_stream(90, seed=seed)
        session = Compressor(
            SizeBudget(12), policy=ExecutionPolicy(backend=backend)
        )
        for segment in stream:
            session.push(segment)
            assert_bit_identical(session.summary(), session.summary_oracle())

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(4))
    def test_chunked_grouped_stream(self, backend, seed):
        stream = random_stream(120, seed=seed, groups=3, dimensions=3)
        session = Compressor(
            size=15, policy=ExecutionPolicy(backend=backend)
        )
        for start in range(0, len(stream), 13):
            session.push(stream[start : start + 13])
            snapshot = session.summary()
            assert_bit_identical(snapshot, session.summary_oracle())
            assert_columns_match(session.summary_columns(), snapshot)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(4))
    def test_error_bounded_with_estimates(self, backend, seed):
        stream = random_stream(80, seed=seed)
        session = Compressor(
            ErrorBudget(0.3),
            policy=ExecutionPolicy(
                backend=backend,
                input_size_estimate=len(stream),
                max_error_estimate=max_error(stream),
            ),
        )
        for start in range(0, len(stream), 11):
            session.push(stream[start : start + 11])
            assert_bit_identical(session.summary(), session.summary_oracle())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_error_bounded_without_estimates(self, backend):
        # No estimates: the online phase never merges (step threshold 0),
        # so the snapshot tail does all the work — the mirror runs the
        # whole end-of-input reduction.
        stream = random_stream(60, seed=9)
        session = Compressor(
            max_error=0.5, policy=ExecutionPolicy(backend=backend)
        )
        for start in range(0, len(stream), 10):
            session.push(stream[start : start + 10])
            assert_bit_identical(session.summary(), session.summary_oracle())

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("delta", [0, 3, math.inf])
    def test_read_ahead_variants(self, backend, delta):
        stream = random_stream(70, seed=11)
        session = Compressor(
            size=9, policy=ExecutionPolicy(backend=backend, delta=delta)
        )
        for start in range(0, len(stream), 7):
            session.push(stream[start : start + 7])
            assert_bit_identical(session.summary(), session.summary_oracle())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_weighted_session(self, backend):
        stream = random_stream(60, seed=13, dimensions=2)
        session = Compressor(
            size=8,
            policy=ExecutionPolicy(backend=backend, weights=(1.0, 3.0)),
        )
        for start in range(0, len(stream), 9):
            session.push(stream[start : start + 9])
            assert_bit_identical(session.summary(), session.summary_oracle())


# ----------------------------------------------------------------------
# Delta-log edge cases (always run)
# ----------------------------------------------------------------------
class TestDeltaLogEdgeCases:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_delta_snapshot_twice(self, backend):
        """Two snapshots with no pushes in between: the log replay is empty."""
        stream = random_stream(40, seed=2)
        session = Compressor(size=6, policy=ExecutionPolicy(backend=backend))
        session.push(stream)
        first = session.summary()
        second = session.summary()  # same generation: cached
        assert second is first
        # Force the delta machinery through an empty log explicitly.
        result, _ = session._reducer.snapshot()
        assert_bit_identical(first, session.summary_oracle())
        assert result.error == first.error

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_snapshot_before_any_push(self, backend):
        session = Compressor(size=5, policy=ExecutionPolicy(backend=backend))
        empty = session.summary()
        assert empty.size == 0 and empty.segments == []
        assert len(session.summary_columns()) == 0
        stream = random_stream(20, seed=3)
        session.push(stream)
        assert_bit_identical(session.summary(), session.summary_oracle())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_clone_mid_log(self, backend):
        """A reducer clone taken mid-log must not alias the delta state."""
        stream = random_stream(60, seed=5)
        session = Compressor(size=8, policy=ExecutionPolicy(backend=backend))
        session.push(stream[:30])
        session.summary()  # mirror exists, log starts accumulating
        session.push(stream[30:45])  # mid-log
        clone = session._reducer.clone()
        # The clone finalizes independently (the oracle), the original
        # keeps snapshotting through the delta path; both see every push.
        oracle = clone.finalize()
        assert_bit_identical(session.summary(), Result(
            segments=oracle.segments,
            error=oracle.error,
            size=oracle.size,
            input_size=oracle.input_size,
            method="greedy",
            backend=backend,
            max_heap_size=oracle.max_heap_size,
            merges=oracle.merges,
        ))
        session.push(stream[45:])
        assert_bit_identical(session.summary(), session.summary_oracle())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_log_overflow_rebuilds_mirror(self, backend):
        """A long snapshot-free stretch discards the log and rebuilds."""
        stream = random_stream(400, seed=6)
        session = Compressor(size=10, policy=ExecutionPolicy(backend=backend))
        session.push(stream[:20])
        session.summary()
        reducer = session._reducer
        first_mirror = reducer._mirror
        assert first_mirror is not None
        session.push(stream[20:])
        # The snapshot-free stretch logged far more operations than the
        # live heap holds: the reducer drops the log and mirror mid-push
        # (bounding delta memory), and the next snapshot rebuilds from
        # the heap — still matching the oracle bit for bit.
        assert reducer._log is None and reducer._mirror is None
        assert_bit_identical(session.summary(), session.summary_oracle())
        assert reducer._mirror is not None
        assert reducer._mirror is not first_mirror

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mixed_single_and_chunk_pushes(self, backend):
        stream = random_stream(90, seed=7, groups=2)
        session = Compressor(size=11, policy=ExecutionPolicy(backend=backend))
        rng = random.Random(17)
        position = 0
        while position < len(stream):
            if rng.random() < 0.5:
                session.push(stream[position])
                position += 1
            else:
                width = rng.randrange(2, 9)
                session.push(stream[position : position + width])
                position += width
            if rng.random() < 0.4:
                assert_bit_identical(
                    session.summary(), session.summary_oracle()
                )
        assert_bit_identical(session.summary(), session.summary_oracle())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_finalize_matches_last_delta_snapshot(self, backend):
        stream = random_stream(50, seed=8)
        session = Compressor(size=7, policy=ExecutionPolicy(backend=backend))
        session.push(stream)
        snapshot = session.summary()
        final = session.finalize()
        assert_bit_identical(final, snapshot)
        # Columns stay available (rebuilt from the final result) and match.
        assert_columns_match(session.summary_columns(), final)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exact_key_ties_fall_back_to_oracle(self, backend):
        """Integer-valued streams tie merge keys exactly; the mirror tail
        must not silently pick a different (equal-error) merge order than
        the oracle — it detects the tie and re-runs via clone+finalize."""
        def unit(values, start):
            return [
                AggregateSegment((), (float(v),), Interval(start + i, start + i))
                for i, v in enumerate(values)
            ]

        session = Compressor(size=2, policy=ExecutionPolicy(backend=backend))
        session.push(unit([1, 1, 2, 2, 1, 1, 0, 0], 0))
        session.summary_columns()  # prime the mirror mid-stream
        session.push(unit([2.0], 8))
        assert_bit_identical(session.summary(), session.summary_oracle())
        # And keep agreeing on further tied pushes.
        session.push(unit([0, 0, 2, 2], 9))
        assert_bit_identical(session.summary(), session.summary_oracle())

    def test_snapshot_requires_tracking(self):
        reducer = OnlineReducer(size=5)  # track_deltas defaults to False
        with pytest.raises(RuntimeError, match="track_deltas"):
            reducer.snapshot()


# ----------------------------------------------------------------------
# Serving layer: eviction / freeze boundaries
# ----------------------------------------------------------------------
class TestStoreFreezeBoundaries:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delta_spanning_freeze_boundary(self, backend):
        """Snapshot columns stay identical to the segment path across epochs."""
        stream = random_stream(90, seed=21, groups=2)
        store = SessionStore(
            size=8, policy=ExecutionPolicy(backend=backend)
        )
        store.push("k", stream[:40])
        first = store.snapshot("k")
        assert_columns_match(store.snapshot_columns("k"), first)
        store.freeze("k")  # epoch boundary: live session -> frozen summary
        store.push("k", stream[40:70])
        mid = store.snapshot("k")
        assert_columns_match(store.snapshot_columns("k"), mid)
        store.freeze("k")
        store.push("k", stream[70:])
        combined = store.snapshot("k")
        assert_columns_match(store.snapshot_columns("k"), combined)
        # Three epochs contributed.
        assert len(store.frozen("k")) == 2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_query_engine_across_freeze_is_oracle_identical(self, backend):
        stream = random_stream(80, seed=22)
        store = SessionStore(size=9, policy=ExecutionPolicy(backend=backend))
        engine = QueryEngine(store)
        store.push("k", stream[:50])
        engine.range_agg("k", 0, 10_000, "avg")  # prime the cache
        store.freeze("k")
        store.push("k", stream[50:])
        # Cold read after the freeze boundary: served from columns.
        lo = min(s.interval.start for s in stream)
        hi = max(s.interval.end for s in stream)
        served = engine.range_agg("k", lo, hi, "avg")
        # Reference: the same query over the segment-path snapshot index.
        from repro.service import SnapshotIndex

        reference = SnapshotIndex(store.segments("k")).resolve(None).range_agg(
            lo, hi, "avg"
        )
        assert served == reference

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_lru_eviction_mid_stream_keeps_snapshots_exact(self, backend):
        streams = {
            f"key{i}": random_stream(50, seed=30 + i) for i in range(3)
        }
        store = SessionStore(
            size=6,
            policy=ExecutionPolicy(backend=backend),
            max_sessions=1,  # every push evicts the other keys
        )
        for offset in (0, 25):
            for key, stream in streams.items():
                store.push(key, stream[offset : offset + 25])
        for key, stream in streams.items():
            snapshot = store.snapshot(key)
            assert snapshot.input_size == len(stream)
            assert_columns_match(store.snapshot_columns(key), snapshot)
