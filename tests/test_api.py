"""Tests for the declarative Plan/Engine surface (:mod:`repro.api`).

Covers the fluent builder (immutability, build-time validation, typed
budgets and enums), the execution policy, the unified :class:`Result`
(stats + ``to_relation`` / ``to_csv`` / iteration sinks), and the executor
dispatch onto all three engines.
"""

from __future__ import annotations

import pytest

from repro import Interval, TemporalRelation, compress, ita, pta, reduce_ita
from repro.api import (
    Backend,
    ErrorBudget,
    ExecutionPolicy,
    Method,
    Plan,
    PlanError,
    Result,
    SizeBudget,
    execute,
    resolve_budget,
)
from repro.datasets import (
    synthetic_grouped_segments,
    synthetic_sequential_segments,
)
from repro.parallel import encode_segments
from repro.pipeline import CompressionResult


@pytest.fixture
def relation() -> TemporalRelation:
    return TemporalRelation.from_records(
        columns=("empl", "proj", "sal"),
        records=[
            ("John", "A", 800, Interval(1, 4)),
            ("Ann", "A", 400, Interval(3, 6)),
            ("Tom", "A", 300, Interval(4, 7)),
            ("John", "B", 500, Interval(4, 5)),
            ("John", "B", 500, Interval(7, 8)),
        ],
    )


AGGS = {"avg_sal": ("avg", "sal")}


# ----------------------------------------------------------------------
# Typed building blocks
# ----------------------------------------------------------------------
class TestBuildingBlocks:
    def test_budgets_validate_on_construction(self):
        assert SizeBudget(4).size == 4
        assert ErrorBudget(0.25).epsilon == 0.25
        with pytest.raises(PlanError, match="size bound"):
            SizeBudget(0)
        with pytest.raises(PlanError, match="epsilon"):
            ErrorBudget(-0.1)

    def test_resolve_budget_accepts_objects_and_keywords(self):
        assert resolve_budget(SizeBudget(3)) == SizeBudget(3)
        assert resolve_budget(size=3) == SizeBudget(3)
        assert resolve_budget(max_error=0.5) == ErrorBudget(0.5)
        with pytest.raises(PlanError, match="exactly one"):
            resolve_budget(SizeBudget(3), size=3)
        with pytest.raises(PlanError, match="SizeBudget or ErrorBudget"):
            resolve_budget(3)  # a bare int is ambiguous, reject it

    def test_enums_coerce_from_strings(self):
        assert Method.coerce("dp") is Method.DP
        assert Method.coerce(Method.GREEDY) is Method.GREEDY
        assert Backend.coerce("numpy") is Backend.NUMPY
        # str-valued enums keep comparing equal to their spelling
        assert Method.DP == "dp" and Backend.PYTHON == "python"

    def test_policy_is_frozen_and_validated(self):
        policy = ExecutionPolicy(backend="numpy", workers=2, delta=0)
        assert policy.backend is Backend.NUMPY
        with pytest.raises(AttributeError):
            policy.workers = 3  # type: ignore[misc]


# ----------------------------------------------------------------------
# The fluent builder
# ----------------------------------------------------------------------
class TestPlanBuilder:
    def test_builder_steps_return_new_plans(self, relation):
        base = Plan(relation)
        grouped = base.group_by("proj")
        aggregated = grouped.aggregate(AGGS)
        reduced = aggregated.reduce(SizeBudget(4))
        assert base.group_columns == ()
        assert grouped.group_columns == ("proj",)
        assert base.budget is None and reduced.budget == SizeBudget(4)
        assert reduced.method is Method.GREEDY

    def test_shared_partial_plans(self, relation):
        base = Plan(relation).group_by("proj").aggregate(AGGS)
        small = base.reduce(SizeBudget(4), method=Method.DP)
        loose = base.reduce(ErrorBudget(0.5))
        assert small.method is Method.DP
        assert loose.method is Method.GREEDY
        assert len(small.run()) == 4
        assert len(loose.run()) <= 7

    def test_aggregate_keyword_form(self, relation):
        plan = (
            Plan(relation)
            .group_by("proj")
            .aggregate(avg_sal=("avg", "sal"))
            .reduce(SizeBudget(4), method="dp")
        )
        keyword_result = plan.run()
        mapping_result = (
            Plan(relation)
            .group_by("proj")
            .aggregate(AGGS)
            .reduce(SizeBudget(4), method="dp")
            .run()
        )
        assert keyword_result.segments == mapping_result.segments
        assert plan.value_columns == ("avg_sal",)

    def test_with_policy_attaches_defaults(self, relation):
        plan = (
            Plan(relation)
            .group_by("proj")
            .aggregate(AGGS)
            .reduce(SizeBudget(4))
            .with_policy(backend="numpy")
        )
        result = plan.run()
        assert result.backend == "numpy"
        # An explicit policy at run() overrides the attached one.
        assert plan.run(ExecutionPolicy()).backend == "python"

    def test_with_method(self, relation):
        plan = (
            Plan(relation).group_by("proj").aggregate(AGGS)
            .reduce(SizeBudget(4)).with_method("dp")
        )
        assert plan.method is Method.DP

    def test_duplicate_outputs_rejected_at_build_time(self, relation):
        base = Plan(relation).group_by("proj")
        # Across chained aggregate() calls ...
        with pytest.raises(PlanError, match="duplicate output"):
            base.aggregate(avg=("avg", "sal")).aggregate(avg=("avg", "sal"))
        # ... and when mixing the mapping and keyword forms in one call.
        with pytest.raises(PlanError, match="duplicate output"):
            base.aggregate({"avg": ("avg", "sal")}, avg=("max", "sal"))

    def test_duplicate_group_columns_rejected_at_build_time(self, relation):
        with pytest.raises(PlanError, match="duplicate group_by"):
            Plan(relation).group_by("proj", "proj")
        with pytest.raises(PlanError, match="duplicate group_by"):
            Plan(relation).group_by("proj").group_by("proj")

    def test_relation_without_aggregates_is_rejected_at_execute(self, relation):
        plan = Plan(relation).reduce(SizeBudget(3))
        with pytest.raises(PlanError, match="at least one aggregate"):
            plan.run()

    def test_execute_requires_a_reduced_plan(self, relation):
        with pytest.raises(PlanError, match="no reduction step"):
            execute(Plan(relation).group_by("proj").aggregate(AGGS))

    def test_execute_rejects_non_plans(self):
        with pytest.raises(PlanError, match="expects a Plan"):
            execute("reduce all the things")  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Executor dispatch
# ----------------------------------------------------------------------
class TestExecutorDispatch:
    def test_dp_matches_reduce_ita(self, relation):
        plan = (
            Plan(relation).group_by("proj").aggregate(AGGS)
            .reduce(SizeBudget(4), method=Method.DP)
        )
        result = plan.run()
        assert result.method == "dp"
        expected = reduce_ita(
            ita(relation, ["proj"], AGGS), ["proj"], ["avg_sal"], size=4
        )
        assert result.to_relation().rows() == expected.rows()

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_greedy_stream_matches_compress(self, backend):
        segments = synthetic_sequential_segments(120, dimensions=2, seed=21)
        plan = Plan(iter(segments)).reduce(SizeBudget(18))
        result = plan.run(ExecutionPolicy(backend=backend))
        reference = compress(list(segments), size=18, backend=backend)
        assert result.segments == reference.segments
        assert result.error == reference.error
        assert result.max_heap_size == reference.max_heap_size

    def test_sharded_dispatch_reports_numpy_backend(self):
        segments = synthetic_grouped_segments(4, 40, dimensions=1, seed=22)
        plan = Plan(segments).reduce(SizeBudget(25))
        result = plan.run(ExecutionPolicy(workers=1))
        assert result.backend == "numpy"
        assert result.size == 25

    def test_encoded_source_requires_workers(self):
        segments = synthetic_sequential_segments(30, dimensions=1, seed=23)
        encoded = encode_segments(segments)
        sharded = Plan(encoded).reduce(SizeBudget(5)).run(
            ExecutionPolicy(workers=1)
        )
        assert sharded.size == 5
        with pytest.raises(PlanError, match="sharded engine"):
            Plan(encoded).reduce(SizeBudget(5)).run()

    def test_relation_through_sharded_engine(self, relation):
        plan = Plan(relation).group_by("proj").aggregate(AGGS).reduce(
            SizeBudget(4)
        )
        sharded = plan.run(ExecutionPolicy(workers=1))
        # Plain GMS (δ = ∞) is what the sharded engine computes.
        sequential = plan.run(ExecutionPolicy(delta=float("inf")))
        assert len(sharded) == len(sequential) == 4
        for left, right in zip(sharded.segments, sequential.segments):
            assert left.group == right.group
            assert left.interval == right.interval
            assert left.values == pytest.approx(right.values)


# ----------------------------------------------------------------------
# The unified Result
# ----------------------------------------------------------------------
class TestResult:
    def test_compression_result_is_the_same_class(self):
        assert CompressionResult is Result

    def test_carries_plan_schema_metadata(self, relation):
        result = (
            Plan(relation).group_by("proj").aggregate(AGGS)
            .reduce(SizeBudget(4)).run()
        )
        assert result.group_columns == ("proj",)
        assert result.value_columns == ("avg_sal",)
        rel = result.to_relation()
        assert rel.schema.columns == ("proj", "avg_sal")

    def test_default_column_names_for_streams(self):
        segments = synthetic_sequential_segments(20, dimensions=3, seed=24)
        result = Plan(segments).reduce(SizeBudget(4)).run()
        rel = result.to_relation()
        assert rel.schema.columns == ("v1", "v2", "v3")

    def test_to_csv_round_trip(self, relation, tmp_path):
        result = (
            Plan(relation).group_by("proj").aggregate(AGGS)
            .reduce(SizeBudget(4)).run()
        )
        path = result.to_csv(tmp_path / "out.csv")
        header = path.read_text().splitlines()[0]
        assert header == "proj,avg_sal,t_start,t_end"

    def test_iteration_and_len(self):
        segments = synthetic_sequential_segments(40, dimensions=1, seed=25)
        result = Plan(segments).reduce(SizeBudget(9)).run()
        assert len(result) == 9
        assert list(result) == result.segments


# ----------------------------------------------------------------------
# Budget alias on the legacy shims
# ----------------------------------------------------------------------
class TestErrorAlias:
    def test_pta_accepts_canonical_max_error(self, relation):
        legacy = pta(relation, ["proj"], AGGS, error=0.5, method="dp")
        canonical = pta(relation, ["proj"], AGGS, max_error=0.5, method="dp")
        assert legacy.rows() == canonical.rows()

    def test_compress_accepts_legacy_error(self):
        segments = synthetic_sequential_segments(30, dimensions=1, seed=26)
        legacy = compress(list(segments), error=0.4)
        canonical = compress(list(segments), max_error=0.4)
        assert legacy.segments == canonical.segments
