"""Injected disk faults, worker kills, and the hardened HTTP surface.

Satellite coverage for ISSUE 7: ENOSPC/EIO failpoints on WAL append,
fsync and checkpoint rename; push atomicity (memory never diverges from
the log); recovery bit-identity after a fault-then-crash sequence on
both backends; the degraded-mode state machine; per-shard retry and
in-process fallback under worker crashes; and the structured error
surface of the HTTP front end (400/413/429/500/503).
"""

from __future__ import annotations

import json
import random
import socket
import urllib.error
import urllib.request

import pytest

from repro import Interval, compress
from repro.core import AggregateSegment
from repro.api import ExecutionPolicy
from repro.parallel import run_sharded
from repro.service import (
    Durability,
    DurabilityError,
    Service,
    SessionStore,
    encode_result,
    start_in_background,
)
from repro.storage.wal import WalError, WalWriter, read_wal, write_checkpoint
from repro.util import failpoints
from repro.util.failpoints import Exit, Raise, activated

BACKENDS = ["python", "numpy"]

ENOSPC = OSError(28, "No space left on device")
EIO = OSError(5, "Input/output error")


def stream(count: int, seed: int) -> list[AggregateSegment]:
    rng = random.Random(seed)
    segments: list[AggregateSegment] = []
    t = 1
    for _ in range(count):
        end = t + rng.randint(0, 3)
        segments.append(
            AggregateSegment(
                ("g",),
                (float(rng.randint(0, 50)), rng.random() * 10.0),
                Interval(t, end),
            )
        )
        t = end + 1 + (rng.randint(1, 4) if rng.random() < 0.2 else 0)
    return segments


def chunked(segments, size):
    return [segments[i: i + size] for i in range(0, len(segments), size)]


def snapshot_bytes(store: SessionStore, key: str) -> bytes:
    return encode_result(store.snapshot(key))


# ----------------------------------------------------------------------
# WAL-level faults
# ----------------------------------------------------------------------
class TestWalFaults:
    def test_failed_append_truncates_itself_back(self, tmp_path):
        path = tmp_path / "a.wal"
        with WalWriter(path) as wal:
            wal.append(b"first")
            mark = wal.tell()
            with activated({"wal.append": Raise(ENOSPC, times=1)}):
                with pytest.raises(OSError):
                    wal.append(b"second")
            assert wal.tell() == mark
            assert not wal.broken
            wal.append(b"third")  # the tail stayed byte-clean
        assert read_wal(path) == [b"first", b"third"]

    def test_fsync_fault_leaves_the_appended_frame_in_place(self, tmp_path):
        path = tmp_path / "a.wal"
        wal = WalWriter(path, fsync_every=1)
        with activated({"wal.fsync": Raise(EIO, times=1)}):
            with pytest.raises(OSError):
                wal.append(b"frame")
        # The write itself landed; only its durability is in doubt.
        assert read_wal(path) == [b"frame"]
        wal.close()

    def test_failed_rollback_marks_the_writer_broken(self, tmp_path):
        path = tmp_path / "a.wal"
        wal = WalWriter(path)
        wal.append(b"first")
        with activated(
            {
                "wal.append": Raise(ENOSPC, times=1),
                "wal.rollback": Raise(EIO, times=1),
            }
        ):
            with pytest.raises(OSError):
                wal.append(b"second")
        assert wal.broken
        with pytest.raises(WalError, match="rotate the epoch"):
            wal.append(b"third")  # a torn tail must never be appended after

    def test_checkpoint_write_fault_leaves_no_file_behind(self, tmp_path):
        target = tmp_path / "epoch-00000000.ckpt"
        import numpy as np

        columns = {"starts": np.asarray([1], dtype=np.int64)}
        with activated({"checkpoint.write": Raise(ENOSPC, times=1)}):
            with pytest.raises(OSError):
                write_checkpoint(target, columns)
        assert not target.exists()
        assert not target.with_name(target.name + ".tmp").exists()

    def test_checkpoint_rename_fault_leaves_only_a_tmp_file(self, tmp_path):
        target = tmp_path / "epoch-00000000.ckpt"
        import numpy as np

        columns = {"starts": np.asarray([1], dtype=np.int64)}
        with activated({"checkpoint.rename": Raise(EIO, times=1)}):
            with pytest.raises(OSError):
                write_checkpoint(target, columns)
        assert not target.exists()
        assert target.with_name(target.name + ".tmp").exists()


# ----------------------------------------------------------------------
# Durability-tier faults
# ----------------------------------------------------------------------
class TestDurabilityFaults:
    def test_log_push_wraps_disk_faults_and_stays_clean(self, tmp_path):
        durability = Durability(tmp_path, fsync_every=1)
        payload = b"pta-payload"
        durability.log_push("k", 0, payload)
        with activated({"wal.append": Raise(ENOSPC, times=1)}):
            with pytest.raises(DurabilityError, match="append failed"):
                durability.log_push("k", 0, payload)
        durability.log_push("k", 0, payload)  # healed: appends again
        durability.close()
        assert read_wal(durability.wal_path("k", 0)) == [payload, payload]

    def test_group_commit_counts_pushes_not_frames(self, tmp_path):
        durability = Durability(tmp_path, fsync_every=3)
        with activated({}):  # counting only: no armed actions
            for index in range(7):
                durability.log_push("ab"[index % 2], 0, b"x")
                durability.commit()
            # Sweeps after pushes 3 and 6; each syncs both dirty writers.
            assert failpoints.evaluations("wal.fsync") == 4
        durability.close()

    def test_probe_fault_is_wrapped(self, tmp_path):
        durability = Durability(tmp_path)
        with activated({"durability.probe": Raise(EIO, times=1)}):
            with pytest.raises(DurabilityError, match="probe failed"):
                durability.probe()
        durability.probe()  # healed
        assert not (tmp_path / ".probe").exists()


# ----------------------------------------------------------------------
# Store push atomicity + recovery bit-identity after fault-then-crash
# ----------------------------------------------------------------------
class TestPushAtomicity:
    def test_failed_push_leaves_memory_and_counters_untouched(self, tmp_path):
        store = SessionStore(size=10, data_dir=tmp_path / "d")
        chunks = chunked(stream(40, seed=1), 8)
        store.push("k", chunks[0])
        before = snapshot_bytes(store, "k")
        pushed = store.pushed("k")
        with activated({"wal.append": Raise(ENOSPC, times=1)}):
            with pytest.raises(DurabilityError):
                store.push("k", chunks[1])
        assert store.pushed("k") == pushed
        assert snapshot_bytes(store, "k") == before
        store.push("k", chunks[1])  # safe retry
        assert store.pushed("k") == pushed + len(chunks[1])
        store.close()

    def test_failed_first_push_leaves_no_phantom_key(self, tmp_path):
        store = SessionStore(size=10, data_dir=tmp_path / "d")
        with activated({"wal.append": Raise(ENOSPC, times=1)}):
            with pytest.raises(DurabilityError):
                store.push("ghost", stream(5, seed=2))
        assert "ghost" not in store
        assert len(store) == 0
        store.close()

    def test_fsync_fault_still_acknowledges_the_push(self, tmp_path):
        store = SessionStore(size=10, data_dir=tmp_path / "d", fsync_every=1)
        with activated({"wal.fsync": Raise(EIO, times=1)}):
            consumed = store.push("k", stream(6, seed=3))
        assert consumed == 6
        assert store.pushed("k") == 6
        assert store.stats().disk_errors == 1
        assert not store.degraded
        store.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_recovery_bit_identity_after_fault_then_crash(
        self, tmp_path, backend
    ):
        """Faults, retries, then a crash: recovery matches memory exactly."""
        policy = ExecutionPolicy(backend=backend)
        data_dir = tmp_path / "d"
        store = SessionStore(size=12, policy=policy, data_dir=data_dir)
        chunks = chunked(stream(60, seed=4), 6)
        with activated(
            {"wal.append": Raise(ENOSPC, probability=0.4, times=2)},
            seed=11,
        ):
            for chunk in chunks:
                while True:
                    try:
                        store.push("k", chunk)
                        break
                    except DurabilityError:
                        pass  # retry is safe: the push was not acked
        live = snapshot_bytes(store, "k")
        del store  # crash: no close(); acknowledged frames are on disk

        recovered = SessionStore(
            size=12, policy=policy, data_dir=data_dir
        )
        assert snapshot_bytes(recovered, "k") == live
        recovered.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_checkpoint_rename_fault_then_crash_recovers(
        self, tmp_path, backend
    ):
        """A demotion interrupted by a rename fault keeps the WAL, so a
        crash right after still recovers every acknowledged push."""
        policy = ExecutionPolicy(backend=backend)
        data_dir = tmp_path / "d"
        store = SessionStore(
            size=12, policy=policy, data_dir=data_dir, degrade_after=5
        )
        store.push("k", stream(30, seed=5))
        with activated({"checkpoint.rename": Raise(EIO, times=1)}):
            store.freeze("k")  # falls back to a resident frozen epoch
        assert store.stats().disk_errors == 1
        live = snapshot_bytes(store, "k")
        del store  # crash with the demotion incomplete

        recovered = SessionStore(
            size=12, policy=policy, data_dir=data_dir
        )
        assert snapshot_bytes(recovered, "k") == live
        recovered.close()

    def test_pending_demotion_retries_on_the_next_durable_push(
        self, tmp_path
    ):
        data_dir = tmp_path / "d"
        store = SessionStore(size=12, data_dir=data_dir, degrade_after=5)
        store.push("k", stream(30, seed=6))
        with activated({"checkpoint.write": Raise(ENOSPC, times=1)}):
            store.freeze("k")
        [epoch] = store.frozen_epochs("k")
        assert epoch.resident  # checkpoint failed: kept in memory
        store.push("k", stream(5, seed=7))  # success retries the demotion
        [epoch] = store.frozen_epochs("k")
        assert not epoch.resident
        assert epoch.path is not None and epoch.path.exists()
        store.close()


# ----------------------------------------------------------------------
# Degraded mode
# ----------------------------------------------------------------------
class TestDegradedMode:
    def test_enters_after_consecutive_faults_and_keeps_serving(
        self, tmp_path
    ):
        store = SessionStore(
            size=10, data_dir=tmp_path / "d", degrade_after=3,
            reprobe_every=0,
        )
        chunks = chunked(stream(40, seed=8), 5)
        store.push("k", chunks[0])
        with activated({"wal.append": Raise(ENOSPC)}):
            for index in range(1, 4):
                with pytest.raises(DurabilityError):
                    store.push("k", chunks[index])
            assert store.degraded
            # Degraded pushes are acknowledged memory-only, no failpoint
            # evaluations because nothing touches the disk.
            consumed = store.push("k", chunks[4])
        assert consumed == len(chunks[4])
        stats = store.stats()
        assert stats.degraded and stats.durable
        assert stats.disk_errors == 3
        # The WAL still only holds the one acknowledged durable push.
        wal = Durability(tmp_path / "d").wal_path("k", 0)
        assert len(read_wal(wal)) == 1
        store.close()

    def test_reprobe_reattaches_and_recovery_matches_memory(self, tmp_path):
        data_dir = tmp_path / "d"
        store = SessionStore(
            size=10, data_dir=data_dir, degrade_after=2, reprobe_every=0
        )
        chunks = chunked(stream(50, seed=9), 10)
        store.push("k", chunks[0])
        with activated({"wal.append": Raise(ENOSPC)}):
            for index in (1, 2):
                with pytest.raises(DurabilityError):
                    store.push("k", chunks[index])
        assert store.degraded
        store.push("k", chunks[1])  # memory-only
        store.push("k", chunks[2])
        assert store.reprobe()  # disk healed: re-attach demotes dirty keys
        assert not store.degraded
        store.push("k", chunks[3])  # durable again
        live = snapshot_bytes(store, "k")
        del store  # crash

        recovered = SessionStore(size=10, data_dir=data_dir)
        assert snapshot_bytes(recovered, "k") == live
        recovered.close()

    def test_automatic_reprobe_after_reprobe_every_pushes(self, tmp_path):
        store = SessionStore(
            size=10, data_dir=tmp_path / "d", degrade_after=1,
            reprobe_every=2,
        )
        with activated({"wal.append": Raise(ENOSPC, times=1)}):
            with pytest.raises(DurabilityError):
                store.push("k", stream(4, seed=10))
        assert store.degraded
        store.push("k", stream(4, seed=11))  # degraded push 1
        assert store.degraded
        store.push("k", stream(4, seed=12))  # push 2 triggers the probe
        assert not store.degraded
        store.close()

    def test_probe_failure_keeps_the_store_degraded(self, tmp_path):
        store = SessionStore(
            size=10, data_dir=tmp_path / "d", degrade_after=1,
            reprobe_every=0,
        )
        with activated({"wal.append": Raise(ENOSPC, times=1)}):
            with pytest.raises(DurabilityError):
                store.push("k", stream(4, seed=13))
        assert store.degraded
        with activated({"durability.probe": Raise(EIO)}):
            assert not store.reprobe()
        assert store.degraded
        assert store.reprobe()  # healed
        store.close()

    def test_broken_writer_rotates_only_the_poisoned_key(self, tmp_path):
        store = SessionStore(
            size=10, data_dir=tmp_path / "d", degrade_after=4,
            reprobe_every=0,
        )
        store.push("k", stream(10, seed=14))
        store.push("other", stream(10, seed=15))
        with activated(
            {
                "wal.append": Raise(ENOSPC, times=1),
                "wal.rollback": Raise(EIO, times=1),
            }
        ):
            with pytest.raises(DurabilityError):
                store.push("k", stream(5, seed=16))
        # The torn tail is quarantined: the key's epoch rotated at once
        # (the acknowledged data was frozen), the store is not degraded,
        # and both keys keep accepting durable pushes on fresh WALs.
        assert not store.degraded
        assert len(store.frozen_epochs("k")) == 1
        store.push("k", stream(5, seed=17))
        store.push("other", stream(5, seed=18))
        assert store.stats().disk_errors == 1
        store.close()


# ----------------------------------------------------------------------
# Sharded engine under worker crashes
# ----------------------------------------------------------------------
class TestWorkerCrashes:
    SEGMENTS = 180
    SHARD = 30

    def _input(self):
        return stream(self.SEGMENTS, seed=20)

    def test_bounded_kills_heal_and_output_is_bit_identical(self, tmp_path):
        segments = self._input()
        baseline = run_sharded(segments, size=15, shard_size=self.SHARD)
        with activated(
            {
                "parallel.worker": Exit(
                    code=9, limit=2, limit_dir=str(tmp_path)
                )
            },
            propagate=True,
        ):
            survived = run_sharded(
                segments,
                size=15,
                workers=2,
                shard_size=self.SHARD,
                retry_backoff=0.01,
            )
        assert survived.segments == baseline.segments
        assert survived.error == baseline.error
        assert survived.merges == baseline.merges

    def test_unbounded_kills_fall_back_in_process(self):
        segments = self._input()
        baseline = run_sharded(segments, size=15, shard_size=self.SHARD)
        with activated({"parallel.worker": Exit(code=9)}, propagate=True):
            survived = run_sharded(
                segments,
                size=15,
                workers=2,
                shard_size=self.SHARD,
                shard_retries=1,
                retry_backoff=0.01,
            )
            # The in-process fallback evaluated the site in this process
            # (where Exit never fires) once per shard.
            assert failpoints.evaluations("parallel.worker") >= (
                self.SEGMENTS // self.SHARD
            )
        assert survived.segments == baseline.segments
        assert survived.error == baseline.error

    def test_worker_exceptions_propagate_not_retry(self):
        segments = self._input()
        with activated(
            {"parallel.worker": Raise(ValueError("injected worker error"))},
            propagate=True,
        ):
            with pytest.raises(ValueError, match="injected worker error"):
                run_sharded(
                    segments, size=15, workers=2, shard_size=self.SHARD
                )

    def test_compress_entry_point_survives_kills(self, tmp_path):
        segments = self._input()
        baseline = compress(
            segments, size=15, workers=1, shard_size=self.SHARD
        )
        with activated(
            {
                "parallel.worker": Exit(
                    code=9, limit=1, limit_dir=str(tmp_path)
                )
            },
            propagate=True,
        ):
            survived = compress(
                segments, size=15, workers=2, shard_size=self.SHARD
            )
        assert survived.segments == baseline.segments
        assert survived.error == baseline.error


# ----------------------------------------------------------------------
# HTTP fault surface
# ----------------------------------------------------------------------
def expect_http_error(call, status: int, code: str):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        call()
    assert excinfo.value.code == status
    body = json.load(excinfo.value)
    assert body["code"] == code
    assert "error" in body
    return excinfo.value


def post_json(port: int, path: str, body: bytes, headers=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body,
        method="POST",
        headers=headers or {},
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def get(port: int, path: str):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}"
    ) as response:
        return json.load(response)


SEGMENT_JSON = json.dumps(
    [{"group": [], "values": [1.0], "start": 0, "end": 3}]
).encode()


def recv_all(sock: socket.socket) -> str:
    """Drain a socket until the server closes it (responses can split
    across TCP segments; a single recv races the second one)."""
    data = b""
    while chunk := sock.recv(4096):
        data += chunk
    return data.decode()


class TestHTTPFaultSurface:
    @pytest.fixture()
    def durable_server(self, tmp_path):
        service = Service(
            size=10,
            data_dir=tmp_path / "d",
            degrade_after=2,
            reprobe_every=0,
        )
        server, _ = start_in_background(
            service, max_body=4096, request_timeout=2.0
        )
        yield server, service
        server.shutdown()
        server.server_close()

    def test_oversized_content_length_is_413(self, durable_server):
        server, _ = durable_server
        expect_http_error(
            lambda: post_json(
                server.port,
                "/push/k",
                SEGMENT_JSON,
                headers={"Content-Length": str(50 * 1024 * 1024)},
            ),
            413,
            "payload_too_large",
        )

    def test_invalid_content_length_is_400(self, durable_server):
        server, _ = durable_server
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=5
        ) as sock:
            sock.sendall(
                b"POST /push/k HTTP/1.1\r\n"
                b"Host: x\r\n"
                b"Connection: close\r\n"
                b"Content-Length: banana\r\n"
                b"\r\n"
            )
            text = recv_all(sock)
        assert " 400 " in text.splitlines()[0]
        assert "bad_request" in text

    def test_truncated_body_is_400(self, durable_server):
        server, _ = durable_server
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=5
        ) as sock:
            sock.sendall(
                b"POST /push/k HTTP/1.1\r\n"
                b"Host: x\r\n"
                b"Content-Length: 100\r\n"
                b"\r\n"
                b"short"
            )
            sock.shutdown(socket.SHUT_WR)
            text = recv_all(sock)
        assert " 400 " in text.splitlines()[0]
        assert "truncated" in text

    def test_slow_client_hits_the_deadline(self, tmp_path):
        service = Service(size=10)
        server, _ = start_in_background(service, request_timeout=0.4)
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5
            ) as sock:
                sock.sendall(
                    b"POST /push/k HTTP/1.1\r\n"
                    b"Host: x\r\n"
                    b"Content-Length: 100\r\n"
                    b"\r\n"
                    b"partial"  # then stall: never send the rest
                )
                text = recv_all(sock)
            assert " 400 " in text.splitlines()[0]
            assert "deadline_exceeded" in text
        finally:
            server.shutdown()
            server.server_close()

    def test_backpressure_is_429_with_retry_after(self, durable_server):
        server, _ = durable_server
        # Fill every push slot so the next push is shed immediately.
        while server.push_slots.acquire(blocking=False):
            pass
        try:
            error = expect_http_error(
                lambda: post_json(server.port, "/push/k", SEGMENT_JSON),
                429,
                "backpressure",
            )
            assert error.headers["Retry-After"] == "1"
        finally:
            for _ in range(64):
                try:
                    server.push_slots.release()
                except ValueError:
                    break

    def test_unexpected_exception_is_structured_500(self, durable_server):
        server, service = durable_server

        def explode(key, segments):
            raise KeyError("internal bug")

        original = service.push
        service.push = explode
        try:
            error = expect_http_error(
                lambda: post_json(server.port, "/push/k", SEGMENT_JSON),
                500,
                "internal",
            )
            assert "internal bug" not in error.read().decode()
        finally:
            service.push = original

    def test_durable_faults_then_degraded_healthz(self, durable_server):
        server, service = durable_server
        assert get(server.port, "/healthz") == {"status": "ok"}
        with activated({"wal.append": Raise(ENOSPC)}):
            for _ in range(2):  # degrade_after=2
                expect_http_error(
                    lambda: post_json(
                        server.port, "/push/k", SEGMENT_JSON
                    ),
                    503,
                    "durability",
                )
        expect_http_error(
            lambda: get(server.port, "/healthz"), 503, "degraded"
        )
        stats = get(server.port, "/stats")
        assert stats["degraded"] == 1 and stats["durable"] == 1
        assert stats["disk_errors"] == 2
        # Degraded pushes are still acknowledged (memory-only).
        reply = post_json(server.port, "/push/k", SEGMENT_JSON)
        assert reply["pushed"] == 1
        # The disk healed: a manual reprobe re-attaches, healthz recovers.
        assert service.store.reprobe()
        assert get(server.port, "/healthz") == {"status": "ok"}
        assert get(server.port, "/stats")["degraded"] == 0
