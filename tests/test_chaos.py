"""Seeded chaos: random operation schedules under probabilistic faults.

The capstone of ISSUE 7.  Each test drives a long, seed-determined
schedule of operations (pushes, queries, freezes, reprobes; HTTP
requests; sharded computes) while disk faults and worker kills fire
probabilistically, then checks the system-level invariants:

* the store never wedges — after the disk heals, every key accepts
  pushes again and pending checkpoint demotions drain;
* every acknowledged push is recoverable bit-identically after a crash
  (frozen + live, via :func:`encode_result` over :meth:`snapshot`);
* the HTTP surface only ever answers with structured JSON errors from
  the documented set (400/404/413/429/500/503), never a hung socket or
  an unframed traceback;
* ``compress(..., workers=N)`` stays bit-identical to the fault-free
  run under injected worker crashes.

Seeds come from ``REPRO_CHAOS_SEED`` (comma-separated) so CI can fan a
matrix of schedules across jobs; the default keeps local runs fast.
"""

from __future__ import annotations

import json
import os
import random
import time
import urllib.error
import urllib.request

import pytest

from repro import compress
from repro.cluster import (
    ReplicationLink,
    reduce_cluster,
    standby_store,
    start_standby,
    start_worker,
)
from repro.parallel import run_sharded
from repro.service import (
    DurabilityError,
    ReplicationError,
    Service,
    SessionStore,
    encode_result,
    start_in_background,
)
from repro.util.failpoints import Exit, Raise, activated
from repro.util.health import PeerHealth

from test_fault_injection import SEGMENT_JSON, stream

SEEDS = [
    int(raw)
    for raw in os.environ.get("REPRO_CHAOS_SEED", "0,7").split(",")
    if raw.strip()
]

KEYS = ["alpha", "beta", "gamma"]


def disk_faults() -> dict:
    """Every durability failpoint, firing with moderate probability.

    Exceptions are factories, not shared instances, so concurrent
    firings never race on one object's traceback.
    """
    enospc = lambda: OSError(28, "No space left on device")  # noqa: E731
    eio = lambda: OSError(5, "Input/output error")  # noqa: E731
    return {
        "wal.append": Raise(enospc, probability=0.15),
        "wal.fsync": Raise(eio, probability=0.10),
        "wal.rollback": Raise(eio, probability=0.05),
        "checkpoint.write": Raise(enospc, probability=0.20),
        "checkpoint.rename": Raise(eio, probability=0.20),
        "durability.probe": Raise(eio, probability=0.30),
    }


@pytest.mark.parametrize("seed", SEEDS)
class TestStoreChaos:
    OPS = 80

    def test_acked_pushes_survive_chaos_then_crash(self, tmp_path, seed):
        rng = random.Random(seed)
        data_dir = tmp_path / "d"
        store = SessionStore(
            size=12,
            data_dir=data_dir,
            fsync_every=3,
            degrade_after=3,
            reprobe_every=5,
        )
        feed = iter(range(10_000))
        with activated(disk_faults(), seed=seed):
            for _ in range(self.OPS):
                key = rng.choice(KEYS)
                op = rng.random()
                if op < 0.70:
                    chunk = stream(rng.randint(1, 6), seed=next(feed))
                    try:
                        store.push(key, chunk)
                    except DurabilityError:
                        pass  # not acknowledged; memory unchanged
                elif op < 0.85:
                    if key in store:
                        encode_result(store.snapshot(key))  # never raises
                elif op < 0.95:
                    if key in store and store.is_live(key):
                        store.freeze(key)  # demote faults are absorbed
                else:
                    store.reprobe()  # probe faults just report False

        # Heal: faults are gone.  One durable push per key proves the
        # store never wedged and drains any pending demotions; a reprobe
        # re-attaches if the schedule ended degraded.
        if store.degraded:
            assert store.reprobe()
        for key in KEYS:
            store.push(key, stream(2, seed=next(feed)))
        assert not store.degraded
        assert store._pending_demote == []  # every epoch is on disk

        live = {key: encode_result(store.snapshot(key)) for key in KEYS}
        pushed = {key: store.pushed(key) for key in KEYS}
        del store  # crash without close(): only acked frames are on disk

        recovered = SessionStore(size=12, data_dir=data_dir)
        for key in KEYS:
            assert recovered.pushed(key) == pushed[key]
            assert encode_result(recovered.snapshot(key)) == live[key]
        recovered.close()


ALLOWED_HTTP_ERRORS = {400, 404, 413, 429, 503}


@pytest.mark.parametrize("seed", SEEDS)
class TestHTTPChaos:
    REQUESTS = 60

    def test_only_structured_errors_ever_escape(self, tmp_path, seed):
        rng = random.Random(seed)
        service = Service(
            size=10,
            data_dir=tmp_path / "d",
            degrade_after=2,
            reprobe_every=4,
        )
        server, _ = start_in_background(
            service, max_body=4096, request_timeout=5.0
        )
        statuses: list[int] = []
        try:
            with activated(disk_faults(), seed=seed):
                for _ in range(self.REQUESTS):
                    statuses.append(self._request(server.port, rng))
            # Heal and re-attach; the service must come back clean.
            if service.store.degraded:
                assert service.store.reprobe()
            reply = self._get(server.port, "/healthz")
            assert reply == (200, {"status": "ok"})
            assert self._post(server.port, "/push/alpha", SEGMENT_JSON)[0] == 200
        finally:
            server.shutdown()
            server.server_close()

        assert statuses.count(200) > 0  # chaos did not refuse everything
        errors = {code for code in statuses if code != 200}
        assert errors <= ALLOWED_HTTP_ERRORS, statuses

    def _request(self, port: int, rng: random.Random) -> int:
        choice = rng.random()
        if choice < 0.50:
            key = rng.choice(KEYS)
            return self._post(port, f"/push/{key}", SEGMENT_JSON)[0]
        if choice < 0.65:
            key = rng.choice(KEYS)
            return self._get(port, f"/summary?key={key}")[0]
        if choice < 0.75:
            return self._get(port, "/stats")[0]
        if choice < 0.82:
            return self._get(port, "/healthz")[0]
        if choice < 0.90:
            return self._post(port, "/push/alpha", b"not json at all")[0]
        if choice < 0.96:
            huge = {"Content-Length": str(64 * 1024 * 1024)}
            return self._post(port, "/push/alpha", SEGMENT_JSON, huge)[0]
        return self._get(port, f"/nowhere/{rng.randint(0, 9)}")[0]

    @staticmethod
    def _open(request) -> tuple:
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status, json.load(response)
        except urllib.error.HTTPError as error:
            body = json.load(error)
            # Structured error contract: JSON carrying "error" + "code"
            # (degraded /healthz adds a "status" field on top).
            assert "error" in body and "code" in body, body
            return error.code, body

    def _get(self, port: int, path: str) -> tuple:
        return self._open(
            urllib.request.Request(f"http://127.0.0.1:{port}{path}")
        )

    def _post(self, port, path, body, headers=None) -> tuple:
        return self._open(
            urllib.request.Request(
                f"http://127.0.0.1:{port}{path}",
                data=body,
                method="POST",
                headers=headers or {},
            )
        )


@pytest.mark.parametrize("seed", SEEDS)
class TestComputeChaos:
    def test_sharded_compress_is_bit_identical_under_kills(
        self, tmp_path, seed
    ):
        rng = random.Random(seed)
        segments = stream(150, seed=seed)
        baseline = compress(segments, size=15, workers=1, shard_size=25)
        with activated(
            {
                "parallel.worker": Exit(
                    code=9,
                    limit=rng.randint(1, 3),
                    limit_dir=str(tmp_path),
                )
            },
            seed=seed,
            propagate=True,
        ):
            survived = compress(segments, size=15, workers=2, shard_size=25)
        assert survived.segments == baseline.segments
        assert survived.error == baseline.error
        assert survived.merges == baseline.merges


# ----------------------------------------------------------------------
# Cluster chaos: quorum replication under link faults and standby kills
# ----------------------------------------------------------------------
def _wait_until(predicate, timeout=30.0, interval=0.01):
    limit = time.monotonic() + timeout
    while time.monotonic() < limit:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())


@pytest.mark.parametrize("seed", SEEDS)
class TestClusterChaos:
    """One durable primary (``sync_replicas=1``) and a standby under a
    seeded transport-fault schedule: links drop mid-stream (including
    mid-quorum-wait, rolling the push back), a standby is killed while
    disconnected and an empty replacement binds its address.  The
    invariants: every *acknowledged* push is servable bit-identically
    from the standby the acks covered, and the store never wedges —
    once the faults stop, the link re-homes itself and acks resume with
    no manual ``replicate_to``.
    """

    OPS = 30

    def test_acked_pushes_stay_bit_identical_under_link_chaos(
        self, tmp_path, seed
    ):
        rng = random.Random(seed)
        servers = []

        def boot(port=0):
            server, _ = start_standby(standby_store(size=30), port=port)
            servers.append(server)
            return server

        standby = boot()
        port = standby.port
        primary = SessionStore(
            size=30, sync_replicas=1, data_dir=tmp_path / "p"
        )
        oracle = SessionStore(size=30)
        link = ReplicationLink(
            standby.address,
            reconnect_backoff=0.01,
            health=PeerHealth(cooldown=0.05),
        )
        link.attach(primary)
        feed = iter(range(10_000))
        acked = 0
        killed = False
        kill_from = rng.randrange(5, self.OPS - 5)
        broken = lambda: OSError(32, "Broken pipe")  # noqa: E731
        try:
            with activated(
                {"transport.send": Raise(broken, probability=0.12)},
                seed=seed,
            ):
                for op in range(self.OPS):
                    if op >= kill_from and not killed and not link.connected:
                        # The standby dies for real while the link is
                        # down; an *empty* replacement takes over its
                        # address and must be re-seeded by auto-resync.
                        standby.shutdown()
                        standby.server_close()
                        standby = boot(port)
                        killed = True
                    chunk = stream(rng.randint(1, 6), seed=next(feed))
                    try:
                        primary.push("k", chunk)
                    except ReplicationError:
                        continue  # rolled back: neither side moved
                    oracle.push("k", chunk)
                    acked += len(chunk)
                    if rng.random() < 0.15 and primary.is_live("k"):
                        primary.freeze("k")
                        oracle.freeze("k")
                    if rng.random() < 0.3:
                        time.sleep(0.01)  # give the reconnect loop air

            # Heal: faults are gone.  The link must re-home itself and
            # synchronous acks must resume — the store never wedged.
            assert _wait_until(lambda: link.connected)
            final = stream(3, seed=next(feed))
            primary.push("k", final)
            oracle.push("k", final)
            acked += 3

            # Whichever standby the primary's acks covered holds every
            # acknowledged push, bit-identically.
            assert acked == primary.pushed("k")
            assert _wait_until(
                lambda: any(
                    "k" in server.store
                    and server.store.pushed("k") == acked
                    for server in servers
                )
            )
            target = next(
                server
                for server in servers
                if "k" in server.store
                and server.store.pushed("k") == acked
            )
            promoted = target.promote()
            assert encode_result(promoted.snapshot("k")) == encode_result(
                oracle.snapshot("k")
            )
        finally:
            for server in servers:
                server.shutdown()
                server.server_close()
            primary.close()


@pytest.mark.parametrize("seed", SEEDS)
class TestClusterComputeChaos:
    def test_reduce_cluster_bit_identical_under_worker_faults(self, seed):
        # Probabilistic worker deaths (the cluster.worker failpoint) on
        # both reducers: retries, peer rotation and the local fallback
        # must keep the distributed answer bit-identical.
        segments = stream(150, seed=seed)
        oracle = run_sharded(segments, size=15, workers=1, shard_size=25)
        reducers = [start_worker()[0] for _ in range(2)]
        try:
            with activated(
                {"cluster.worker": Raise(probability=0.25)}, seed=seed
            ):
                result = reduce_cluster(
                    segments,
                    size=15,
                    cluster=[worker.address for worker in reducers],
                    shard_size=25,
                    shard_retries=1,
                    retry_backoff=0.0,
                )
        finally:
            for worker in reducers:
                worker.shutdown()
                worker.server_close()
        assert result.segments == oracle.segments
        assert result.error == oracle.error
        assert result.size == oracle.size
