"""Quickstart: the paper's running example, end to end.

Builds the ``proj`` relation of Fig. 1(a), evaluates span, instant and
parsimonious temporal aggregation over it, and shows both the exact (DP) and
the greedy evaluation of PTA together with the error they introduce.

Run with::

    python examples/quickstart.py
"""

from repro import Interval, Plan, SizeBudget, TemporalRelation, compress, ita, pta, sta
from repro.core import (
    gms_reduce_to_size,
    max_error,
    reduce_to_size,
    segments_from_relation,
)


def print_relation(title, relation):
    print(f"\n{title}")
    print("-" * len(title))
    for row in relation:
        values = ", ".join(
            f"{name}={value:.2f}" if isinstance(value, float) else f"{name}={value}"
            for name, value in row.value_dict().items()
        )
        print(f"  {values}, T={row.interval}")


def main():
    proj = TemporalRelation.from_records(
        columns=("empl", "proj", "sal"),
        records=[
            ("John", "A", 800, Interval(1, 4)),
            ("Ann", "A", 400, Interval(3, 6)),
            ("Tom", "A", 300, Interval(4, 7)),
            ("John", "B", 500, Interval(4, 5)),
            ("John", "B", 500, Interval(7, 8)),
        ],
    )
    aggregates = {"avg_sal": ("avg", "sal")}

    print_relation("proj relation (Fig. 1a)", proj)
    print_relation(
        "STA: average salary per project and trimester (Fig. 1b)",
        sta(proj, ["proj"], aggregates, span_length=4),
    )
    ita_result = ita(proj, ["proj"], aggregates)
    print_relation("ITA: average monthly salary per project (Fig. 1c)", ita_result)
    print_relation(
        "PTA: the same, reduced to at most 4 tuples (Fig. 1d)",
        pta(proj, ["proj"], aggregates, size=4),
    )
    print_relation(
        "PTA, error-bounded to 20% of the maximal error",
        pta(proj, ["proj"], aggregates, max_error=0.2),
    )

    # Peek under the hood: compare the exact and the greedy reduction.
    segments = segments_from_relation(ita_result, ["proj"], ["avg_sal"])
    optimal = reduce_to_size(segments, 4)
    greedy = gms_reduce_to_size(segments, 4)
    print("\nReduction quality (size bound c = 4)")
    print("------------------------------------")
    print(f"  maximal possible error SSE_max : {max_error(segments):12.2f}")
    print(f"  optimal (PTAc)  error          : {optimal.error:12.2f}")
    print(f"  greedy  (gPTAc) error          : {greedy.error:12.2f}")
    print(f"  greedy / optimal error ratio   : {greedy.error / optimal.error:12.2f}")

    # The one-call streaming facade does ITA + online reduction in one go
    # (backend="numpy" vectorizes the DP method and batch GMS reductions).
    summary = compress(proj, group_by=["proj"], aggregates=aggregates, size=4)
    print("\nPipeline: compress(proj, size=4) "
          f"-> {summary.size} segments, error {summary.error:.2f}, "
          f"max heap {summary.max_heap_size}")

    # The same query as a declarative plan — the canonical typed surface
    # (repro.api): build-time validation, one executor, uniform Result.
    result = (
        Plan(proj)
        .group_by("proj")
        .aggregate(avg_sal=("avg", "sal"))
        .reduce(SizeBudget(4))
        .run()
    )
    print("Plan(proj).group_by('proj').aggregate(...).reduce(SizeBudget(4)) "
          f"-> {result.size} segments, error {result.error:.2f}")
    print_relation("Same summary via result.to_relation()", result.to_relation())


if __name__ == "__main__":
    main()
