"""Live serving demo: push streams over HTTP, query bounded summaries.

Boots the serving layer end to end, all inside one process and with
nothing beyond the standard library on the wire:

1. a :class:`repro.service.Service` (session store + query engine) fronted
   by the stdlib ``ThreadingHTTPServer`` on an ephemeral port;
2. three simulated sensor streams pushed chunk by chunk over HTTP (JSON
   bodies — the binary wire format is exercised for the summary download);
3. live queries between pushes: ``value_at``, ``range_agg`` and a
   ``window`` sweep, answered from cached ``summary()`` snapshots;
4. the serving contract check the CI smoke job relies on: the served
   ``range_agg`` answer is **bit-identical** to computing the same query
   on batch :func:`repro.compress` output over the same tuples;
5. TTL eviction: an idle sensor's session is frozen into a summary that
   stays queryable — no pushed tuple is ever dropped;
6. a ``GET /metrics`` scrape: the key Prometheus series of every tier
   (HTTP latency histograms, store push counters, query cache counters)
   are present and every sample line parses.

Run with::

    python examples/live_service.py [--readings N]

Exits non-zero if any serving answer diverges from its batch reference,
which is what makes it a usable CI smoke check.
"""

import argparse
import json
import math
import random
import re
import time
import urllib.request

from repro import Interval, compress
from repro.core import AggregateSegment
from repro.service import (
    Service,
    SessionStore,
    SnapshotIndex,
    WIRE_CONTENT_TYPE,
    decode_result,
    start_in_background,
)

SUMMARY_SIZE = 48
CHUNK = 64


def sensor_stream(sensor: int, readings: int) -> list[AggregateSegment]:
    """A drifting noisy series with occasional outages (temporal gaps)."""
    rng = random.Random(1000 + sensor)
    segments, t = [], 0
    for i in range(readings):
        value = (
            20.0
            + 8.0 * math.sin(i / 40.0 + sensor)
            + rng.gauss(0.0, 1.5)
        )
        segments.append(AggregateSegment((), (value,), Interval(t, t)))
        t += 1
        if rng.random() < 0.01:
            t += rng.randrange(2, 10)  # outage
    return segments


def post_json(base: str, path: str, payload) -> dict:
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(), method="POST"
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def get_json(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path) as response:
        return json.load(response)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--readings", type=int, default=600,
                        help="readings per sensor (default 600)")
    arguments = parser.parse_args()

    # TTL eviction via an injected clock so the demo is deterministic.
    clock = [0.0]
    store = SessionStore(
        size=SUMMARY_SIZE, ttl=30.0, clock=lambda: clock[0]
    )
    service = Service(store=store)
    server, _ = start_in_background(service)
    base = f"http://127.0.0.1:{server.port}"
    print(f"serving on {base}")

    streams = {
        f"sensor-{i}": sensor_stream(i, arguments.readings) for i in range(3)
    }

    # ------------------------------------------------------------------
    # Push chunk by chunk over HTTP, querying while data arrives.
    # ------------------------------------------------------------------
    started = time.perf_counter()
    for key, stream in streams.items():
        for lo in range(0, len(stream), CHUNK):
            chunk = stream[lo : lo + CHUNK]
            post_json(base, f"/push/{key}", [
                {"group": [], "values": list(s.values),
                 "start": s.interval.start, "end": s.interval.end}
                for s in chunk
            ])
            clock[0] += 1.0
        last = stream[-1].interval.end
        point = get_json(base, f"/value_at?key={key}&t={last}")
        print(f"  {key}: pushed {len(stream)} readings, "
              f"value_at(t={last}) = {point['values'][0]:.2f}")
    elapsed = time.perf_counter() - started
    total = sum(len(s) for s in streams.values())
    print(f"pushed {total} readings over HTTP in {elapsed:.2f}s "
          f"({total / elapsed:,.0f} readings/s)")

    # ------------------------------------------------------------------
    # The serving contract: served range_agg == the same query on batch
    # compress output of the same tuples, bit for bit.
    # ------------------------------------------------------------------
    print("\nserving contract (served answer vs batch compress):")
    for key, stream in streams.items():
        lo = stream[0].interval.start
        hi = stream[-1].interval.end
        served = get_json(
            base, f"/range_agg?key={key}&t1={lo}&t2={hi}&fn=avg"
        )["values"]
        batch = compress(stream, size=SUMMARY_SIZE)
        reference = SnapshotIndex(batch.segments).resolve(None).range_agg(
            lo, hi, "avg"
        )
        match = tuple(served) == reference
        print(f"  {key}: range_agg[{lo},{hi}] served={served[0]:.6f} "
              f"batch={reference[0]:.6f} bit-identical={match}")
        assert match, f"serving diverged from batch compress for {key}"

    # A window sweep — the dashboard query shape.
    key = "sensor-0"
    stride = max(arguments.readings // 8, 1)
    sweep = get_json(
        base,
        f"/window?key={key}&t1=0&t2={arguments.readings - 1}"
        f"&stride={stride}",
    )
    cells = [
        f"{bucket['values'][0]:.1f}" if bucket["values"] else "gap"
        for bucket in sweep["buckets"]
    ]
    print(f"\n{key} windowed avg (stride {stride}): {' | '.join(cells)}")

    # ------------------------------------------------------------------
    # Binary wire format: download the summary as bytes, decode exactly.
    # ------------------------------------------------------------------
    request = urllib.request.Request(
        f"{base}/summary?key={key}", headers={"Accept": WIRE_CONTENT_TYPE}
    )
    with urllib.request.urlopen(request) as response:
        payload = response.read()
    result = decode_result(payload)
    print(f"\nwire summary of {key}: {len(payload)} bytes for "
          f"{result.size} segments covering {result.input_size} readings "
          f"(error {result.error:.1f})")

    # ------------------------------------------------------------------
    # TTL eviction freezes idle sessions; their data stays queryable.
    # ------------------------------------------------------------------
    clock[0] += 100.0  # everything is now idle past the 30s TTL
    store.evict_idle()
    stats = get_json(base, "/stats")
    print(f"\nafter TTL sweep: {stats}")
    assert stats["live_sessions"] == 0 and stats["evictions"] == 3
    frozen_point = get_json(base, "/value_at?key=sensor-1&t=0")
    assert frozen_point["values"] is not None
    print(f"frozen sensor-1 still answers value_at(0) = "
          f"{frozen_point['values'][0]:.2f} — eviction lost nothing")

    # ------------------------------------------------------------------
    # /metrics: the key series are present and every line parses.
    # ------------------------------------------------------------------
    with urllib.request.urlopen(f"{base}/metrics") as response:
        assert response.headers["Content-Type"].startswith(
            "text/plain; version=0.0.4"
        )
        exposition = response.read().decode("utf-8")
    for needle in (
        "# TYPE repro_http_request_seconds histogram",
        'repro_http_request_seconds_bucket{endpoint="push"',
        "repro_store_pushed_segments_total",
        "repro_store_evictions_total",
        "repro_query_cache_hits_total",
        "repro_query_cache_misses_total",
    ):
        assert needle in exposition, f"missing from /metrics: {needle}"
    sample_re = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$")
    samples = 0
    for line in exposition.splitlines():
        if line.startswith("#"):
            continue
        assert sample_re.match(line), f"unparseable metrics line: {line}"
        samples += 1
    pushed = next(
        line for line in exposition.splitlines()
        if line.startswith("repro_store_pushed_segments_total")
    )
    print(f"\n/metrics: {samples} Prometheus samples, e.g. {pushed}")

    server.shutdown()
    print("\nOK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
