"""Salary dashboard: summarising an HR history for visualisation.

The paper motivates PTA with applications such as data visualisation, where
the fine-grained ITA result is too large to plot but a span aggregation
hides the interesting changes.  This example builds an Incumbents-style
salary history, asks for the average salary per department over time, and
compares three summaries a dashboard could show:

* the full ITA result (exact but large),
* a span aggregation by year (small but oblivious to the data), and
* a size-bounded PTA summary small enough to plot, which still follows the
  significant salary changes.

Run with::

    python examples/salary_dashboard.py
"""

from pathlib import Path

from repro import ita, pta, sta
from repro.core import max_error, segments_from_relation, sse_between
from repro.datasets import generate_incumbents
from repro.evaluation import reduction_ratio
from repro.storage import write_relation

TARGET_TUPLES_PER_DEPartment = 6

#: Example outputs land next to the examples, not in the caller's CWD.
OUT_DIR = Path(__file__).parent / "out"


def sparkline(values, width=50):
    """Render a sequence of numbers as a coarse text sparkline."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    sampled = values[:: max(len(values) // width, 1)]
    return "".join(blocks[int((v - low) / span * (len(blocks) - 1))] for v in sampled)


def main():
    history = generate_incumbents(
        departments=6, projects_per_department=4,
        incumbents_per_project=10, months=240, seed=20,
    )
    aggregates = {"avg_salary": ("avg", "salary")}
    group_by = ["dept"]

    ita_result = ita(history, group_by, aggregates)
    yearly = sta(history, group_by, aggregates, span_length=12)

    budget = TARGET_TUPLES_PER_DEPartment * len(history.groups(group_by))
    summary = pta(history, group_by, aggregates, size=budget)

    original = segments_from_relation(ita_result, group_by, ["avg_salary"])
    reduced = segments_from_relation(summary, group_by, ["avg_salary"])
    error = sse_between(original, reduced)
    maximum = max_error(original)

    print("Salary dashboard summary")
    print("========================")
    print(f"argument relation          : {len(history):6d} tuples")
    print(f"ITA result                 : {len(ita_result):6d} tuples")
    print(f"STA by year                : {len(yearly):6d} tuples")
    print(f"PTA summary (c = {budget:3d})      : {len(summary):6d} tuples")
    print(f"reduction ratio            : {reduction_ratio(len(ita_result), len(summary)):6.1f} %")
    print(f"introduced error           : {100.0 * error / maximum:6.2f} % of SSE_max")

    print("\nAverage salary per department (PTA summary):")
    for dept in sorted({row['dept'] for row in summary}):
        rows = [row for row in summary if row["dept"] == dept]
        values = [row["avg_salary"] for row in rows]
        print(f"  {dept}: {sparkline(values)}  "
              f"({len(rows)} segments, "
              f"{min(values):7.0f} .. {max(values):7.0f})")

    OUT_DIR.mkdir(exist_ok=True)
    target = OUT_DIR / "salary_summary.csv"
    write_relation(summary, target)
    print(f"\nPTA summary written to {target}")


if __name__ == "__main__":
    main()
