"""Durability demo: push, crash, recover — and prove nothing changed.

Walks the durability tier end to end, in one process and against a real
data directory:

1. a durable :class:`repro.service.SessionStore` (``data_dir=``,
   ``checkpoint_every=`` so some epochs demote to ``PTAC`` checkpoints
   while pushes keep landing in the live ``PTAW`` WAL);
2. three simulated sensor streams pushed chunk by chunk, each push
   fsynced to the write-ahead log before it is acknowledged;
3. a **crash**: the store is abandoned without ``close()``, and the live
   WAL of one key gets a torn half-written frame appended — exactly what
   a power cut mid-``write`` leaves behind;
4. **recovery**: a fresh store boots from the same ``data_dir``, loads
   checkpoints via ``mmap``, truncates the torn tail and replays the WAL
   through the online reducer;
5. the contract check: every recovered summary is **bit-identical** (the
   encoded wire bytes compare equal) to the one the uncrashed store
   served, and the recovered store keeps accepting pushes.

Run with::

    python examples/durable_service.py [--readings N] [--data-dir DIR]

Exits non-zero if recovery diverges from the uncrashed store, which is
what makes it a usable CI smoke check.
"""

import argparse
import math
import random
import shutil
import struct
import tempfile
from pathlib import Path

from repro import Interval
from repro.core import AggregateSegment
from repro.service import SessionStore, encode_result

SUMMARY_SIZE = 48
CHUNK = 32
CHECKPOINT_EVERY = 200  # demote the live epoch every 200 pushed readings


def sensor_stream(sensor: int, readings: int) -> list[AggregateSegment]:
    """A drifting noisy series with occasional outages (temporal gaps)."""
    rng = random.Random(2000 + sensor)
    segments, t = [], 0
    for i in range(readings):
        value = (
            20.0
            + 8.0 * math.sin(i / 40.0 + sensor)
            + rng.gauss(0.0, 1.5)
        )
        segments.append(AggregateSegment((), (value,), Interval(t, t)))
        t += 1
        if rng.random() < 0.01:
            t += rng.randrange(2, 10)  # outage
    return segments


def open_store(data_dir: Path) -> SessionStore:
    return SessionStore(
        size=SUMMARY_SIZE,
        data_dir=data_dir,
        checkpoint_every=CHECKPOINT_EVERY,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--readings", type=int, default=600,
                        help="readings per sensor (default 600)")
    parser.add_argument("--data-dir", type=Path, default=None,
                        help="durable directory (default: fresh tempdir)")
    arguments = parser.parse_args()

    cleanup = arguments.data_dir is None
    data_dir = arguments.data_dir or Path(
        tempfile.mkdtemp(prefix="repro-durable-")
    )
    print(f"durable data_dir: {data_dir}")

    streams = {
        f"sensor-{i}": sensor_stream(i, arguments.readings) for i in range(3)
    }

    # ------------------------------------------------------------------
    # Push durably: every chunk is WAL-logged + fsynced before the store
    # acknowledges it; every CHECKPOINT_EVERY readings the live epoch is
    # demoted to an mmap-served checkpoint and its WAL deleted.
    # ------------------------------------------------------------------
    store = open_store(data_dir)
    for key, stream in streams.items():
        for lo in range(0, len(stream), CHUNK):
            store.push(key, stream[lo : lo + CHUNK])
        print(f"  {key}: pushed {store.pushed(key)} readings, "
              f"{len(store.frozen_epochs(key))} demoted epoch(s)")

    reference = {
        key: encode_result(store.snapshot(key)) for key in streams
    }
    reference_pushed = {key: store.pushed(key) for key in streams}
    on_disk = sorted(
        p.relative_to(data_dir).as_posix() for p in data_dir.rglob("epoch-*")
    )
    print(f"on disk before the crash: {on_disk}")

    # ------------------------------------------------------------------
    # Crash.  No close(), no flush — and one live WAL gets a torn frame:
    # a frame header promising 4096 payload bytes, then the power dies.
    # ------------------------------------------------------------------
    del store  # the process is gone; only the fsynced files remain
    wal_files = sorted(data_dir.glob("sensor-0/epoch-*.wal"))
    torn = wal_files[-1]
    with open(torn, "ab") as handle:
        handle.write(struct.pack("<II", 4096, 0) + b"\xde\xad")
    print(f"\ncrash: appended a torn frame to {torn.name} of sensor-0")

    # ------------------------------------------------------------------
    # Recover: boot a fresh store from the same directory.
    # ------------------------------------------------------------------
    recovered = open_store(data_dir)
    print("\nrecovery contract (recovered vs uncrashed, wire bytes):")
    for key in streams:
        assert recovered.pushed(key) == reference_pushed[key], (
            f"{key}: recovered {recovered.pushed(key)} readings, "
            f"expected {reference_pushed[key]}"
        )
        payload = encode_result(recovered.snapshot(key))
        match = payload == reference[key]
        print(f"  {key}: {recovered.pushed(key)} readings recovered, "
              f"summary {len(payload)} bytes, bit-identical={match}")
        assert match, f"recovery diverged from the uncrashed store for {key}"

    # The torn tail was truncated, not fatal — and the store is live:
    # it keeps accepting pushes right where the stream left off.
    tail = sensor_stream(0, arguments.readings)[-CHUNK:]
    shifted = [
        AggregateSegment(
            s.group,
            s.values,
            Interval(s.interval.start + 10_000, s.interval.end + 10_000),
        )
        for s in tail
    ]
    recovered.push("sensor-0", shifted)
    assert recovered.pushed("sensor-0") == reference_pushed["sensor-0"] + len(
        shifted
    )
    print(f"\nsensor-0 accepts new pushes after recovery "
          f"({recovered.pushed('sensor-0')} readings total)")

    recovered.close()
    if cleanup:
        shutil.rmtree(data_dir)
    print("\nOK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
