"""Error-bounded archiving of an employee history.

A warehouse keeps the full employee contract history online for the current
year and archives older data in compressed form, guaranteeing that the
archived aggregate never deviates from the exact ITA answer by more than a
chosen fraction of the maximal error.  This is exactly error-bounded PTA
(Definition 7): the system chooses the error budget, PTA minimises the number
of stored tuples.

The example sweeps several error budgets over an ETDS-style relation and
reports the achieved compression, then shows the greedy error-bounded
algorithm gPTAε producing nearly the same compression online.

Run with::

    python examples/error_bounded_archiving.py
"""

from repro import ita
from repro.core import max_error, reduce_to_error, segments_from_relation
from repro.datasets import generate_etds
from repro.evaluation import reduction_ratio
from repro.pipeline import compress

ERROR_BUDGETS = (0.001, 0.01, 0.05, 0.2)


def main():
    history = generate_etds(employees=500, months=180, seed=30)
    aggregates = {"avg_salary": ("avg", "salary"), "headcount": ("count", None)}

    ita_result = ita(history, ["dept"], aggregates)
    segments = segments_from_relation(
        ita_result, ["dept"], ["avg_salary", "headcount"]
    )
    emax = max_error(segments)

    print("Error-bounded archiving of an ETDS-style employee history")
    print("==========================================================")
    print(f"argument relation : {len(history)} tuples")
    print(f"ITA result        : {len(segments)} tuples, SSE_max = {emax:.1f}\n")

    header = f"{'budget eps':>10} | {'exact PTAeps size':>18} | {'reduction':>9} | {'gPTAeps size':>12} | {'heap':>6}"
    print(header)
    print("-" * len(header))
    for epsilon in ERROR_BUDGETS:
        exact = reduce_to_error(segments, epsilon, backend="numpy")
        online = compress(
            iter(segments), max_error=epsilon, delta=1,
            input_size_estimate=len(segments), max_error_estimate=emax,
        )
        print(
            f"{epsilon:>10.3f} | {exact.size:>18d} | "
            f"{reduction_ratio(len(segments), exact.size):>8.1f}% | "
            f"{online.size:>12d} | {online.max_heap_size:>6d}"
        )

    print(
        "\nEvery archived summary is guaranteed to stay within "
        "eps * SSE_max of the exact ITA answer."
    )


if __name__ == "__main__":
    main()
