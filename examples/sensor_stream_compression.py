"""Sensor stream compression with the online greedy algorithms.

A monitoring system keeps a long history of sensor readings but only needs a
bounded summary per sensor for trend analysis.  This example feeds a
multi-channel wind-speed style series through the streaming pipeline
(:func:`repro.pipeline.compress`), which drives the *online* greedy
algorithm gPTAc chunk by chunk — the full history is never materialised and
the merge heap stays at ``c + β`` entries — and compares the result against
the exact DP reduction and against classic time series approximations (PAA
and the Haar wavelet transform).

It then switches to *live ingest*: a push-based
:class:`repro.api.Compressor` session consumes the same stream one reading
at a time and serves bounded summaries **while data keeps arriving** —
every ``summary()`` snapshot is bit-identical to a batch run over the
prefix pushed so far, and the live state keeps going afterwards.

Run with::

    python examples/sensor_stream_compression.py
"""

import numpy as np

from repro.api import Compressor, ExecutionPolicy, SizeBudget
from repro.baselines import dwt_approximate_to_size, paa, series_from_segments
from repro.core import DELTA_INFINITY, reduce_to_size, sse_between
from repro.datasets import chaotic_series, series_to_segments, wind_series
from repro.pipeline import compress

SUMMARY_SIZE = 40


def summarize(name, segments):
    print(f"\n{name}: {len(segments)} readings -> {SUMMARY_SIZE} segments")
    print("-" * 60)

    optimal = reduce_to_size(segments, SUMMARY_SIZE, backend="numpy")
    for delta in (0, 1, DELTA_INFINITY):
        label = "inf" if delta == DELTA_INFINITY else delta
        online = compress(iter(segments), size=SUMMARY_SIZE, delta=delta)
        ratio = online.error / optimal.error if optimal.error else 1.0
        print(f"  gPTAc delta={label!s:>3}: error ratio {ratio:6.3f}, "
              f"max heap {online.max_heap_size:5d} "
              f"({100.0 * online.max_heap_size / len(segments):5.1f}% of input)")

    if segments[0].dimensions == 1:
        series = np.asarray(series_from_segments(segments))
        for label, error in (
            ("PAA", paa(series, SUMMARY_SIZE).error),
            ("DWT", dwt_approximate_to_size(series, SUMMARY_SIZE).error),
        ):
            ratio = error / optimal.error if optimal.error else float("inf")
            print(f"  {label:>15}: error ratio {ratio:6.3f}")
    print(f"  optimal (PTAc) : error {optimal.error:.1f}")


def main():
    # A single chaotic sensor channel.
    chaotic = series_to_segments(chaotic_series(1200, seed=5))
    summarize("chaotic sensor", chaotic)

    # Twelve correlated wind stations summarised under one global size bound.
    wind = series_to_segments(wind_series(800, dimensions=12, seed=6))
    summarize("12-channel wind array", wind)

    # Sanity: the reported pipeline error is exactly the SSE to the original.
    online = compress(iter(chaotic), size=SUMMARY_SIZE, delta=1)
    recomputed = sse_between(chaotic, online.segments)
    assert abs(online.error - recomputed) < 1e-6
    print("\nError accounting verified: streamed error equals recomputed SSE.")

    # Live ingest: push readings as they arrive, serve summaries on demand.
    print("\nLive ingest (push-based Compressor session)")
    print("-" * 60)
    session = Compressor(
        SizeBudget(SUMMARY_SIZE), policy=ExecutionPolicy(backend="numpy")
    )
    checkpoints = {len(chaotic) // 4, len(chaotic) // 2, len(chaotic)}
    for reading in chaotic:
        session.push(reading)
        if session.pushed in checkpoints:
            snapshot = session.summary()  # non-destructive, O(heap) cost
            batch = compress(chaotic[: session.pushed], size=SUMMARY_SIZE,
                             backend="numpy")
            match = "bit-identical" if (
                snapshot.segments == batch.segments
                and snapshot.error == batch.error
            ) else "DIVERGED!"
            print(f"  after {session.pushed:4d} readings: "
                  f"{snapshot.size:3d} segments, heap {session.heap_size:3d}, "
                  f"snapshot vs batch: {match}")
    final = session.finalize()
    print(f"  final summary: {final.size} segments, error {final.error:.1f}")


if __name__ == "__main__":
    main()
