"""Cluster demo: remote reduction + warm-standby failover, end to end.

Boots the whole cluster tier in one process (every role on its own
thread, talking over real TCP sockets on localhost) and proves the two
distribution contracts the tier makes:

1. **Distributed reduction is placement-invariant.**  A coordinator
   (``compress(..., cluster=[...])``) ships shards to two reducer
   workers and k-way-merges their trajectory frontiers; the result must
   be bit-identical to the single-process ``workers=1`` reduction —
   including after one worker is killed mid-fleet (retry across peers,
   then local fallback).
2. **Failover loses nothing acknowledged.**  A primary
   :class:`repro.service.SessionStore` streams its per-push delta log to
   a warm standby over a :class:`repro.cluster.ReplicationLink`; after
   the primary "dies", :meth:`StandbyServer.promote` turns the standby
   into a serving primary whose ``value_at`` / ``range_agg`` / ``window``
   answers are bit-identical to the failed primary's at every
   acknowledged push generation.
3. **The cluster self-heals.**  A durable primary with *two* standbys
   and ``sync_replicas=1`` keeps acknowledging pushes while one standby
   is killed mid-stream (the quorum is satisfied by the survivor), and
   when an *empty* replacement comes back at the dead standby's address
   the severed link re-seeds it on its own — auto-resync, no manual
   ``replicate_to`` — until the replacement serves the full history
   bit-identically.

Run with::

    python examples/cluster_demo.py [--readings N]

Exits non-zero if any answer diverges, which is what makes it the CI
``cluster-smoke`` job.
"""

import argparse
import math
import random
import shutil
import tempfile
import time

from repro import Interval
from repro.core import AggregateSegment
from repro.cluster import ReplicationLink, start_standby, start_worker
from repro.cluster.replica import standby_store
from repro.pipeline import compress
from repro.service import QueryEngine, SessionStore
from repro.util import failpoints
from repro.util.health import PeerHealth

SUMMARY_SIZE = 48
CHUNK = 32
SHARD_SIZE = 64


def sensor_stream(readings: int) -> list[AggregateSegment]:
    """A drifting noisy series with occasional outages (temporal gaps)."""
    rng = random.Random(4100)
    segments, t = [], 0
    for i in range(readings):
        value = 20.0 + 8.0 * math.sin(i / 40.0) + rng.gauss(0.0, 1.5)
        segments.append(AggregateSegment((), (value,), Interval(t, t)))
        t += 1
        if rng.random() < 0.01:
            t += rng.randrange(2, 10)  # outage
    return segments


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--readings", type=int, default=600,
                        help="readings in the stream (default 600)")
    arguments = parser.parse_args()
    stream = sensor_stream(arguments.readings)

    # ------------------------------------------------------------------
    # 1. Distributed reduction: coordinator + two reducer workers.
    # ------------------------------------------------------------------
    worker_a, _ = start_worker()
    worker_b, _ = start_worker()
    addresses = [worker_a.address, worker_b.address]
    print(f"reducer workers listening on {addresses}")

    # Same shard plan on both sides: the reduction is bit-identical for
    # every worker placement and count, while the reported SSE statistic
    # is only exact per shard plan (floating-point summation order).
    local = compress(stream, size=SUMMARY_SIZE, workers=1,
                     shard_size=SHARD_SIZE)
    remote = compress(stream, size=SUMMARY_SIZE, cluster=addresses,
                      shard_size=SHARD_SIZE)
    match = remote.segments == local.segments and remote.error == local.error
    print(f"cluster reduction: {len(remote.segments)} segments, "
          f"error {remote.error:.6f}, bit-identical={match}")
    assert match, "cluster reduction diverged from workers=1"

    # Kill one worker mid-fleet: retries rotate to the surviving peer
    # (and would fall back to local reduction if every peer were gone).
    worker_b.shutdown()
    worker_b.server_close()
    print(f"killed worker {worker_b.address}")
    degraded = compress(stream, size=SUMMARY_SIZE, cluster=addresses,
                        shard_size=SHARD_SIZE)
    match = (degraded.segments == local.segments
             and degraded.error == local.error)
    print(f"after worker death: bit-identical={match}")
    assert match, "reduction diverged after a worker death"
    worker_a.shutdown()
    worker_a.server_close()

    # ------------------------------------------------------------------
    # 2. Replication: primary streams its delta log to a warm standby.
    # ------------------------------------------------------------------
    standby, _ = start_standby(standby_store(size=SUMMARY_SIZE))
    print(f"\nwarm standby listening on {standby.address}")

    primary = SessionStore(size=SUMMARY_SIZE)
    link = ReplicationLink(standby.address)
    link.attach(primary)

    chunks = [stream[lo: lo + CHUNK] for lo in range(0, len(stream), CHUNK)]
    for index, chunk in enumerate(chunks):
        primary.push("sensor", chunk)
        if index == len(chunks) // 2:
            primary.freeze("sensor")  # an epoch boundary mid-stream
    stats = primary.stats()
    print(f"primary pushed {primary.pushed('sensor')} readings "
          f"(replicas={stats.replicas}, lag={stats.replication_lag}, "
          f"acked seq={stats.last_acked_generation})")
    assert stats.replication_lag == 0, "healthy link must not lag"

    # Capture what the primary would answer, then "kill" it.
    hi = stream[-1].interval.end
    probes = [0, hi // 3, hi // 2, hi]
    engine = QueryEngine(primary)
    expected_values = [engine.value_at("sensor", t) for t in probes]
    expected_range = engine.range_agg("sensor", 0, hi, "avg")
    expected_window = engine.window("sensor", 0, hi, max(hi // 8, 1))
    del engine, primary  # the primary is gone
    print("primary killed")

    # ------------------------------------------------------------------
    # 3. Failover: promote the standby, compare every answer.
    # ------------------------------------------------------------------
    promoted = standby.promote()
    served = QueryEngine(promoted)
    values = [served.value_at("sensor", t) for t in probes]
    range_agg = served.range_agg("sensor", 0, hi, "avg")
    window = served.window("sensor", 0, hi, max(hi // 8, 1))
    match = (values == expected_values and range_agg == expected_range
             and window == expected_window)
    print(f"promoted standby serves {promoted.pushed('sensor')} readings, "
          f"answers bit-identical={match}")
    assert match, "promoted standby diverged from the failed primary"
    standby.shutdown()
    standby.server_close()

    # ------------------------------------------------------------------
    # 4. Self-healing: quorum acks through a standby kill + auto-resync.
    # ------------------------------------------------------------------
    data_dir = tempfile.mkdtemp(prefix="pta-cluster-demo-")
    doomed, _ = start_standby(standby_store(size=SUMMARY_SIZE))
    survivor, _ = start_standby(standby_store(size=SUMMARY_SIZE))
    doomed_port = doomed.port
    print(f"\nquorum primary with standbys on "
          f"[{doomed.address}, {survivor.address}], sync_replicas=1")

    primary = SessionStore(size=SUMMARY_SIZE, sync_replicas=1,
                           data_dir=data_dir)
    # Short cooldowns keep the demo snappy; the first-attached link is
    # the one a single injected socket fault will sever below.
    doomed_link = ReplicationLink(doomed.address, reconnect_backoff=0.05,
                                  health=PeerHealth(cooldown=0.05))
    survivor_link = ReplicationLink(survivor.address, reconnect_backoff=0.05,
                                    health=PeerHealth(cooldown=0.05))
    doomed_link.attach(primary)
    survivor_link.attach(primary)

    half = len(chunks) // 2
    for chunk in chunks[:half]:
        primary.push("sensor", chunk)  # each ack waited for a standby ack

    # Kill one standby mid-stream: close its server, then sever the
    # established link with a one-shot socket fault (the in-process
    # stand-in for the peer dying).  The push still acks — the quorum
    # is satisfied by the survivor.
    doomed.shutdown()
    doomed.server_close()
    with failpoints.activated(
        {"transport.send": failpoints.Raise(
            OSError(32, "Broken pipe"), times=1)}
    ):
        primary.push("sensor", chunks[half])
    print(f"killed standby {doomed.address} mid-stream; "
          f"push {half} still acked (quorum via the survivor)")
    for chunk in chunks[half + 1:]:
        primary.push("sensor", chunk)

    # An *empty* replacement takes over the dead standby's address; the
    # severed link finds it on its own and re-seeds it from the
    # primary's WAL — full catch-up, then live streaming again.
    replacement, _ = start_standby(
        standby_store(size=SUMMARY_SIZE), port=doomed_port)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline and not (
        doomed_link.connected
        and "sensor" in replacement.store
        and replacement.store.pushed("sensor") == primary.pushed("sensor")
    ):
        time.sleep(0.05)
    lags = {entry["address"]: entry["lag"] for entry in primary.stats().sinks}
    print(f"replacement re-seeded by auto-resync; per-sink lag: {lags}")
    assert doomed_link.connected, "auto-resync never reconnected"
    assert all(lag == 0 for lag in lags.values()), f"sinks still lag: {lags}"

    engine = QueryEngine(primary)
    expected_values = [engine.value_at("sensor", t) for t in probes]
    healed = QueryEngine(replacement.promote())
    match = [healed.value_at("sensor", t) for t in probes] == expected_values
    print(f"promoted replacement answers bit-identical={match}")
    assert match, "auto-resynced replacement diverged from the primary"

    for server in (survivor, replacement):
        server.shutdown()
        server.server_close()
    primary.close()
    shutil.rmtree(data_dir, ignore_errors=True)

    print("\nOK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
